#include "prof/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace slo::prof
{
namespace
{

TEST(LatencyHistogramTest, BucketIndexIsExactBelowSubBucketCount)
{
    for (std::uint64_t nanos = 0;
         nanos < LatencyHistogram::kSubBuckets; ++nanos) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(nanos), nanos);
        EXPECT_DOUBLE_EQ(LatencyHistogram::bucketValueNanos(
                             LatencyHistogram::bucketIndex(nanos)),
                         static_cast<double>(nanos));
    }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndInBounds)
{
    std::size_t previous = 0;
    for (std::uint64_t nanos = 1; nanos < (std::uint64_t{1} << 40);
         nanos = nanos * 2 + 1) {
        const std::size_t bucket = LatencyHistogram::bucketIndex(nanos);
        EXPECT_LT(bucket, LatencyHistogram::kBuckets);
        EXPECT_GE(bucket, previous);
        previous = bucket;
    }
}

TEST(LatencyHistogramTest, BucketValueIsWithinRelativeError)
{
    // The representative of a value's bucket must be within the
    // documented relative error bound (half a bucket width each way,
    // bounded by kRelativeError of the value).
    std::uint64_t nanos = 1;
    for (int i = 0; i < 200; ++i) {
        const std::size_t bucket = LatencyHistogram::bucketIndex(nanos);
        const double rep = LatencyHistogram::bucketValueNanos(bucket);
        const double error =
            std::abs(rep - static_cast<double>(nanos)) /
            static_cast<double>(nanos);
        EXPECT_LE(error, LatencyHistogram::kRelativeError)
            << "nanos=" << nanos << " rep=" << rep;
        nanos = nanos * 3 / 2 + 1;
    }
}

TEST(LatencyHistogramTest, SnapshotTracksExactCountSumMinMax)
{
    LatencyHistogram h;
    const std::vector<std::uint64_t> samples = {5, 1000, 42, 7,
                                                123456789};
    std::uint64_t sum = 0;
    for (std::uint64_t s : samples) {
        h.recordNanos(s);
        sum += s;
    }
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, samples.size());
    EXPECT_EQ(snap.sumNanos, sum);
    EXPECT_EQ(snap.minNanos,
              *std::min_element(samples.begin(), samples.end()));
    EXPECT_EQ(snap.maxNanos,
              *std::max_element(samples.begin(), samples.end()));
}

TEST(LatencyHistogramTest, QuantilesAreOrderedAndBracketed)
{
    LatencyHistogram h;
    for (std::uint64_t i = 1; i <= 10000; ++i)
        h.recordNanos(i * 100); // 100ns .. 1ms, uniform
    const auto snap = h.snapshot();
    const double p50 = snap.quantileNanos(0.50);
    const double p90 = snap.quantileNanos(0.90);
    const double p99 = snap.quantileNanos(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, static_cast<double>(snap.minNanos));
    EXPECT_LE(p99, static_cast<double>(snap.maxNanos));
    // Uniform data: p50 ~ 500us within the bucket error bound.
    EXPECT_NEAR(p50, 500000.0,
                500000.0 * LatencyHistogram::kRelativeError * 2);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero)
{
    LatencyHistogram h;
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.minNanos, 0u);
    EXPECT_EQ(snap.maxNanos, 0u);
    EXPECT_DOUBLE_EQ(snap.quantileNanos(0.99), 0.0);
}

TEST(LatencyHistogramTest, MergeAcrossThreadsLosesNothing)
{
    LatencyHistogram h;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.recordNanos((i + 1) * static_cast<std::uint64_t>(t + 1));
        });
    }
    for (std::thread &t : threads)
        t.join();
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, kThreads * kPerThread);
    EXPECT_EQ(snap.minNanos, 1u);
    EXPECT_EQ(snap.maxNanos, kPerThread * kThreads);
}

TEST(LatencyHistogramTest, RecordSecondsClampsNegativesToZero)
{
    LatencyHistogram h;
    h.record(-1.0);
    h.record(0.5);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_EQ(snap.minNanos, 0u);
    EXPECT_NEAR(static_cast<double>(snap.maxNanos), 5e8, 1.0);
}

TEST(LatencyHistogramTest, ToJsonReportsQuantileSeconds)
{
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(0.001 * (i + 1)); // 1ms .. 100ms
    const obs::Json j = h.toJson();
    EXPECT_EQ(j.at("count").asUint(), 100u);
    EXPECT_GT(j.at("p50_seconds").asDouble(), 0.0);
    EXPECT_LE(j.at("p50_seconds").asDouble(),
              j.at("p99_seconds").asDouble());
    EXPECT_LE(j.at("p99_seconds").asDouble(),
              j.at("p999_seconds").asDouble());
    EXPECT_LE(j.at("min_seconds").asDouble(),
              j.at("p50_seconds").asDouble());
    EXPECT_GE(j.at("max_seconds").asDouble(),
              j.at("p999_seconds").asDouble());
}

TEST(LatencyHistogramTest, RegistryReturnsStableNamedInstances)
{
    latencyRegistryReset();
    LatencyHistogram &a = latencyHistogram("test.registry");
    LatencyHistogram &b = latencyHistogram("test.registry");
    EXPECT_EQ(&a, &b);
    a.recordNanos(100);
    const obs::Json all = latencyRegistryJson();
    EXPECT_TRUE(all.contains("test.registry"));
    EXPECT_EQ(all.at("test.registry").at("count").asUint(), 1u);
    latencyRegistryReset();
    EXPECT_EQ(latencyRegistryJson().size(), 0u);
}

TEST(LatencyHistogramTest, ScopedLatencyRecordsOneSample)
{
    latencyRegistryReset();
    LatencyHistogram &h = latencyHistogram("test.scoped");
    {
        const ScopedLatency timed(h);
    }
    EXPECT_EQ(h.snapshot().count, 1u);
    latencyRegistryReset();
}

} // namespace
} // namespace slo::prof
