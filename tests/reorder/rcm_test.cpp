/** @file Tests for Reverse Cuthill-McKee. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/rcm.hpp"

namespace slo::reorder
{
namespace
{

TEST(RcmTest, ReducesBandwidthOfShuffledBandMatrix)
{
    const Csr band = gen::banded(512, 4, 0.8, 3);
    const Csr shuffled = band.permutedSymmetric(
        Permutation::random(band.numRows(), 7));
    const Index before = matrixBandwidth(shuffled);
    const Csr restored =
        shuffled.permutedSymmetric(rcmOrder(shuffled));
    const Index after = matrixBandwidth(restored);
    EXPECT_LT(after, before / 4);
}

TEST(RcmTest, PathGraphGetsOptimalBandwidth)
{
    Coo coo(64, 64);
    for (Index i = 0; i + 1 < 64; ++i)
        coo.addSymmetric(i, i + 1);
    const Csr path = Csr::fromCoo(coo);
    const Csr shuffled =
        path.permutedSymmetric(Permutation::random(64, 5));
    const Csr restored =
        shuffled.permutedSymmetric(rcmOrder(shuffled));
    EXPECT_EQ(matrixBandwidth(restored), 1);
}

TEST(RcmTest, HandlesMultipleComponents)
{
    Coo coo(10, 10);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(2, 3);
    coo.addSymmetric(4, 5);
    const Csr g = Csr::fromCoo(coo);
    const Permutation p = rcmOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
    EXPECT_EQ(p.size(), 10);
}

TEST(RcmTest, WorksOnDirectedInput)
{
    // Directed pattern gets symmetrized internally.
    Coo coo(6, 6);
    coo.add(0, 1);
    coo.add(1, 2);
    coo.add(2, 3);
    coo.add(3, 4);
    coo.add(4, 5);
    const Csr g = Csr::fromCoo(coo);
    const Permutation p = rcmOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
    const Csr r = g.symmetrized().permutedSymmetric(p);
    EXPECT_EQ(matrixBandwidth(r), 1);
}

TEST(RcmTest, BiCriteriaStartNeverWorsensBandwidth)
{
    // The RCM++ starting-node finder keeps its candidate only when the
    // component bandwidth strictly improves, so the default ordering
    // can never be worse than the classic pseudo-peripheral one.
    const Csr inputs[] = {
        gen::banded(256, 6, 0.7, 1).permutedSymmetric(
            Permutation::random(256, 2)),
        gen::hierarchicalCommunity(512, 4, 2, 6.0, 0.3, 3),
        gen::plantedPartition(300, 6, 8.0, 0.4, 4),
        gen::rmatSocial(8, 6.0, 5),
    };
    for (const Csr &m : inputs) {
        const Index classic = matrixBandwidth(m.permutedSymmetric(
            rcmOrder(m, RcmStart::PseudoPeripheral)));
        const Index bi = matrixBandwidth(
            m.permutedSymmetric(rcmOrder(m, RcmStart::BiCriteria)));
        EXPECT_LE(bi, classic);
    }
}

TEST(RcmTest, RequiresSquare)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(rcmOrder(rect), std::invalid_argument);
}

} // namespace
} // namespace slo::reorder
