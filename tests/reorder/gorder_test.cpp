/** @file Tests for GORDER. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "reorder/gorder.hpp"

namespace slo::reorder
{
namespace
{

/** Sum over consecutive id pairs of shared-neighbour counts: the
 * locality objective GORDER approximates (window 1 version). */
double
windowLocalityScore(const Csr &g, const Permutation &p)
{
    const auto order = p.newToOld();
    double score = 0.0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        const Index u = order[i - 1];
        const Index v = order[i];
        auto iu = g.rowIndices(u);
        auto iv = g.rowIndices(v);
        // shared neighbours (rows are sorted)
        std::size_t a = 0, b = 0;
        while (a < iu.size() && b < iv.size()) {
            if (iu[a] < iv[b]) {
                ++a;
            } else if (iu[a] > iv[b]) {
                ++b;
            } else {
                score += 1.0;
                ++a;
                ++b;
            }
        }
        if (g.hasEntry(u, v))
            score += 1.0;
    }
    return score;
}

TEST(GorderTest, ProducesValidPermutation)
{
    const Csr g = gen::rmatSocial(9, 8.0, 3);
    const Permutation p = gorderOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
}

TEST(GorderTest, BeatsRandomOrderOnLocalityScore)
{
    const Csr g = gen::plantedPartition(1024, 16, 10.0, 1.0, 5);
    const Csr shuffled =
        g.permutedSymmetric(Permutation::random(g.numRows(), 9));
    const double random_score = windowLocalityScore(
        shuffled, Permutation::identity(shuffled.numRows()));
    const double gorder_score =
        windowLocalityScore(shuffled, gorderOrder(shuffled));
    EXPECT_GT(gorder_score, 2.0 * random_score);
}

TEST(GorderTest, HandlesDisconnectedGraphs)
{
    Coo coo(8, 8);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(5, 6);
    const Csr g = Csr::fromCoo(coo);
    const Permutation p = gorderOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
}

TEST(GorderTest, HandlesEdgelessGraph)
{
    const Csr empty(4, 4, {0, 0, 0, 0, 0}, {}, {});
    EXPECT_TRUE(
        Permutation::isPermutation(gorderOrder(empty).newIds()));
}

TEST(GorderTest, WindowValidation)
{
    const Csr g = gen::erdosRenyi(64, 4.0, 1);
    GorderOptions options;
    options.window = 0;
    EXPECT_THROW(gorderOrder(g, options), std::invalid_argument);
}

TEST(GorderTest, HubCapKeepsResultValid)
{
    const Csr g = gen::hubStar(256, 2, 0.8, 1.0, 3);
    GorderOptions options;
    options.hubCap = 8;
    const Permutation p = gorderOrder(g, options);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
}

TEST(GorderTest, DeterministicAcrossRuns)
{
    const Csr g = gen::rmatSocial(8, 6.0, 4);
    EXPECT_EQ(gorderOrder(g).newIds(), gorderOrder(g).newIds());
}

TEST(GorderTest, StartsFromHighestInDegreeVertex)
{
    const Csr g = gen::hubStar(128, 1, 0.9, 0.5, 6);
    const Permutation p = gorderOrder(g);
    // Vertex 0 is the dominant hub in natural order.
    EXPECT_EQ(p.newToOld().front(), 0);
}

} // namespace
} // namespace slo::reorder
