/** @file Tests for SlashBurn. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/slashburn.hpp"

namespace slo::reorder
{
namespace
{

TEST(SlashBurnTest, ProducesValidPermutation)
{
    const Csr g = gen::rmatSocial(10, 8.0, 3);
    EXPECT_TRUE(
        Permutation::isPermutation(slashBurnOrder(g).newIds()));
}

TEST(SlashBurnTest, TopHubGetsIdZero)
{
    const Csr g = gen::hubStar(512, 1, 0.9, 0.5, 4);
    const Permutation p = slashBurnOrder(g);
    // Vertex 0 is the dominant hub; SlashBurn slashes it first.
    EXPECT_EQ(p.newId(0), 0);
}

TEST(SlashBurnTest, SpokesGetHighIds)
{
    // A 20-clique (the giant component survives hub removal) plus an
    // isolated pair: the pair burns in the first iteration and must
    // take the highest ids, while clique members are slashed to the
    // front.
    Coo coo(64, 64);
    for (Index i = 0; i < 20; ++i) {
        for (Index j = i + 1; j < 20; ++j)
            coo.addSymmetric(i, j);
    }
    coo.addSymmetric(62, 63);
    const Csr g = Csr::fromCoo(coo);
    SlashBurnOptions options;
    options.hubFraction = 0.02; // k = 2
    const Permutation p = slashBurnOrder(g, options);
    // The isolated pair is discovered last among the first-iteration
    // burns, so it lands on the very highest ids.
    EXPECT_GE(p.newId(62), 60);
    EXPECT_GE(p.newId(63), 60);
    // Slashed clique hubs occupy the lowest ids.
    EXPECT_LT(p.newId(0), 2);
}

TEST(SlashBurnTest, ValidatesOptions)
{
    const Csr g = gen::erdosRenyi(64, 4.0, 1);
    SlashBurnOptions options;
    options.hubFraction = 0.0;
    EXPECT_THROW(slashBurnOrder(g, options), std::invalid_argument);
    options.hubFraction = 2.0;
    EXPECT_THROW(slashBurnOrder(g, options), std::invalid_argument);
}

TEST(SlashBurnTest, HandlesEdgelessGraph)
{
    const Csr empty(8, 8, std::vector<Offset>(9, 0), {}, {});
    EXPECT_TRUE(
        Permutation::isPermutation(slashBurnOrder(empty).newIds()));
}

TEST(SlashBurnTest, DeterministicAcrossRuns)
{
    const Csr g = gen::rmatSocial(9, 6.0, 8);
    EXPECT_EQ(slashBurnOrder(g).newIds(), slashBurnOrder(g).newIds());
}

} // namespace
} // namespace slo::reorder
