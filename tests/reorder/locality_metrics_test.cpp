/** @file Tests for the static locality metric estimators. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "reorder/locality_metrics.hpp"
#include "reorder/rabbit.hpp"

namespace slo::reorder
{
namespace
{

/** Banded matrix: all neighbours nearby in id space. */
Csr
localMatrix()
{
    return gen::banded(1024, 4, 0.9, 3);
}

Csr
scatteredMatrix()
{
    return localMatrix().permutedSymmetric(
        Permutation::random(1024, 7));
}

TEST(LocalityMetricsTest, WindowScoreHigherForLocalOrder)
{
    EXPECT_GT(windowLocalityScore(localMatrix()),
              2.0 * windowLocalityScore(scatteredMatrix()));
}

TEST(LocalityMetricsTest, WindowScoreValidatesWindow)
{
    EXPECT_THROW(windowLocalityScore(localMatrix(), 0),
                 std::invalid_argument);
}

TEST(LocalityMetricsTest, AverageGapSmallForBandedLargeForShuffled)
{
    EXPECT_LT(averageGapLines(localMatrix()), 1.0); // within a line
    EXPECT_GT(averageGapLines(scatteredMatrix()), 10.0);
}

TEST(LocalityMetricsTest, SameLineFractionDropsWhenShuffled)
{
    EXPECT_GT(sameLineFraction(localMatrix()),
              2.0 * sameLineFraction(scatteredMatrix()));
}

TEST(LocalityMetricsTest, DistinctLinesBounded)
{
    // Per-nnz distinct lines is in (0, 1]; 1 means zero reuse.
    const double local = distinctLinesPerNonZero(localMatrix());
    const double scattered =
        distinctLinesPerNonZero(scatteredMatrix());
    EXPECT_GT(local, 0.0);
    EXPECT_LE(local, 1.0);
    EXPECT_LT(local, scattered);
}

TEST(LocalityMetricsTest, EmptyMatrixIsZero)
{
    const Csr empty(4, 4, {0, 0, 0, 0, 0}, {}, {});
    EXPECT_DOUBLE_EQ(windowLocalityScore(empty), 0.0);
    EXPECT_DOUBLE_EQ(averageGapLines(empty), 0.0);
    EXPECT_DOUBLE_EQ(sameLineFraction(empty), 0.0);
    EXPECT_DOUBLE_EQ(distinctLinesPerNonZero(empty), 0.0);
}

TEST(LocalityMetricsTest, RabbitImprovesEveryMetricOnCommunityGraph)
{
    const Csr g =
        gen::hierarchicalCommunity(8192, 8, 3, 10.0, 0.25, 5)
            .permutedSymmetric(Permutation::random(8192, 9));
    const Csr reordered =
        g.permutedSymmetric(rabbitOrder(g).perm);
    EXPECT_GT(windowLocalityScore(reordered, 5),
              windowLocalityScore(g, 5));
    EXPECT_LT(averageGapLines(reordered), averageGapLines(g));
    EXPECT_GT(sameLineFraction(reordered), sameLineFraction(g));
    EXPECT_LE(distinctLinesPerNonZero(reordered),
              distinctLinesPerNonZero(g));
}

} // namespace
} // namespace slo::reorder
