/** @file Tests for DEGSORT / DBG / HUBSORT / HUBCLUSTER. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/degree_orders.hpp"

namespace slo::reorder
{
namespace
{

/** Directed matrix with in-degrees 0:1, 1:2, 2:0, 3:3. */
Csr
directedSample()
{
    Coo coo(4, 4);
    coo.add(0, 3);
    coo.add(1, 3);
    coo.add(2, 3);
    coo.add(2, 1);
    coo.add(3, 1);
    coo.add(1, 0);
    return Csr::fromCoo(coo);
}

TEST(DegSortTest, SortsByDescendingInDegree)
{
    const Permutation p = degSortOrder(directedSample());
    // in-degrees: v0:1, v1:2, v2:0, v3:3 -> order [3,1,0,2]
    EXPECT_EQ(p.newToOld(), (std::vector<Index>{3, 1, 0, 2}));
}

TEST(DegSortTest, StableForTies)
{
    // All degrees equal: order must be the identity.
    const Csr ring = [] {
        Coo coo(6, 6);
        for (Index i = 0; i < 6; ++i)
            coo.addSymmetric(i, (i + 1) % 6);
        return Csr::fromCoo(coo);
    }();
    EXPECT_TRUE(degSortOrder(ring).isIdentity());
}

TEST(DegSortTest, ResultIsMonotoneInDegree)
{
    const Csr g = gen::rmatSocial(10, 8.0, 3);
    const Permutation p = degSortOrder(g);
    const auto degrees = inDegrees(g);
    const auto order = p.newToOld();
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_GE(degrees[static_cast<std::size_t>(order[i - 1])],
                  degrees[static_cast<std::size_t>(order[i])]);
    }
}

TEST(DbgTest, PreservesRelativeOrderWithinBuckets)
{
    const Csr g = gen::rmatSocial(10, 8.0, 4);
    const Permutation p = dbgOrder(g);
    const auto degrees = inDegrees(g);
    auto bucket = [&degrees](Index v) {
        const Index d = degrees[static_cast<std::size_t>(v)];
        if (d <= 1)
            return 0;
        int b = 0;
        Index x = d;
        while (x > 1) {
            x >>= 1;
            ++b;
        }
        return b;
    };
    const auto order = p.newToOld();
    for (std::size_t i = 1; i < order.size(); ++i) {
        const int b_prev = bucket(order[i - 1]);
        const int b_cur = bucket(order[i]);
        EXPECT_GE(b_prev, b_cur); // buckets descend
        if (b_prev == b_cur) {
            EXPECT_LT(order[i - 1], order[i]); // stable inside bucket
        }
    }
}

TEST(DbgTest, UniformDegreesLeaveOrderUntouched)
{
    const Csr g = gen::grid2d(16, 16, 0.0, 1);
    // Grid degrees are 2..4 -> buckets 1..2; coarse, mostly preserved.
    const Permutation p = dbgOrder(g);
    // The identity must be preserved for equal-bucket runs; sanity: the
    // permutation is valid and most ids move by small amounts.
    EXPECT_EQ(p.size(), g.numRows());
}

TEST(HubSortTest, HubsFirstSortedRestStable)
{
    const Csr g = directedSample();
    // avg degree = 6/4 = 1.5; hubs (in-degree > 1.5): v1 (2), v3 (3).
    const Permutation p = hubSortOrder(g);
    EXPECT_EQ(p.newToOld(), (std::vector<Index>{3, 1, 0, 2}));
}

TEST(HubClusterTest, HubsFirstInOriginalOrder)
{
    const Csr g = directedSample();
    const Permutation p = hubClusterOrder(g);
    // Hubs {1, 3} keep relative order, then {0, 2}.
    EXPECT_EQ(p.newToOld(), (std::vector<Index>{1, 3, 0, 2}));
}

TEST(HubOrdersTest, NoHubsMeansIdentity)
{
    // Regular ring: nobody exceeds the average degree.
    Coo coo(8, 8);
    for (Index i = 0; i < 8; ++i)
        coo.addSymmetric(i, (i + 1) % 8);
    const Csr ring = Csr::fromCoo(coo);
    EXPECT_TRUE(hubSortOrder(ring).isIdentity());
    EXPECT_TRUE(hubClusterOrder(ring).isIdentity());
}

} // namespace
} // namespace slo::reorder
