/** @file Tests for the BOBA one-pass parallel lightweight ordering. */

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/permutation.hpp"
#include "par/par.hpp"
#include "reorder/boba.hpp"
#include "reorder/locality_metrics.hpp"

namespace slo::reorder
{
namespace
{

Csr
shuffledCommunityGraph()
{
    const Csr g = gen::hierarchicalCommunity(1024, 4, 3, 8.0, 0.3, 11);
    return g.permutedSymmetric(Permutation::random(g.numRows(), 4));
}

TEST(BobaTest, ReturnsAValidPermutation)
{
    const Csr m = shuffledCommunityGraph();
    const Permutation p = bobaOrder(m);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
    EXPECT_EQ(p.size(), m.numRows());
}

TEST(BobaTest, OrdersVerticesByFirstAppearanceInTheNonzeroStream)
{
    const Csr m = shuffledCommunityGraph();
    const Index n = m.numRows();
    // Reference: first position in the row-major nonzero stream where
    // each vertex appears as a column; unseen vertices keep -1.
    std::vector<Offset> first(static_cast<std::size_t>(n), -1);
    Offset pos = 0;
    for (Index r = 0; r < n; ++r) {
        for (Index u : m.rowIndices(r)) {
            if (first[static_cast<std::size_t>(u)] < 0)
                first[static_cast<std::size_t>(u)] = pos;
            ++pos;
        }
    }
    std::vector<Index> expected(static_cast<std::size_t>(n));
    std::iota(expected.begin(), expected.end(), Index{0});
    std::stable_sort(expected.begin(), expected.end(),
        [&first](Index a, Index b) {
            const Offset fa = first[static_cast<std::size_t>(a)];
            const Offset fb = first[static_cast<std::size_t>(b)];
            if ((fa < 0) != (fb < 0))
                return fb < 0; // seen vertices precede unseen ones
            if (fa != fb)
                return fa < fb;
            return a < b;
        });

    const Permutation p = bobaOrder(m);
    for (Index i = 0; i < n; ++i)
        EXPECT_EQ(p.newIds()[static_cast<std::size_t>(
                      expected[static_cast<std::size_t>(i)])],
                  i);
}

TEST(BobaTest, DeterministicAcrossThreadCountsAndGrains)
{
    const Csr m = shuffledCommunityGraph();
    std::vector<Index> reference;
    {
        par::ThreadPool pool(1);
        const par::ScopedPoolOverride scoped(pool);
        reference = bobaOrder(m).newIds();
    }
    for (int threads : {2, 4, 8}) {
        par::ThreadPool pool(threads);
        const par::ScopedPoolOverride scoped(pool);
        EXPECT_EQ(bobaOrder(m).newIds(), reference)
            << "threads=" << threads;
        for (Offset grain : {Offset{1}, Offset{17}, Offset{100000}}) {
            BobaOptions options;
            options.bucketGrain = grain;
            EXPECT_EQ(bobaOrder(m, options).newIds(), reference)
                << "threads=" << threads << " grain=" << grain;
        }
    }
}

TEST(BobaTest, ImprovesLocalityOfAShuffledCommunityGraph)
{
    // The one-pass ordering groups co-accessed columns, so it must beat
    // a random shuffle on the gap metric (lower = better locality).
    const Csr m = shuffledCommunityGraph();
    const Csr by_boba = m.permutedSymmetric(bobaOrder(m));
    const Csr by_random =
        m.permutedSymmetric(Permutation::random(m.numRows(), 8));
    EXPECT_LT(averageGapLines(by_boba), averageGapLines(by_random));
}

TEST(BobaTest, HandlesEmptyAndEdgelessMatrices)
{
    EXPECT_EQ(bobaOrder(Csr()).size(), 0);
    const Csr edgeless(4, 4, {0, 0, 0, 0, 0}, {}, {});
    const Permutation p = bobaOrder(edgeless);
    // No vertex ever appears as a column: identity by ascending id.
    EXPECT_EQ(p.newIds(), Permutation::identity(4).newIds());
}

TEST(BobaTest, RequiresSquare)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(bobaOrder(rect), std::invalid_argument);
}

} // namespace
} // namespace slo::reorder
