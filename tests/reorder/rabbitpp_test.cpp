/** @file Tests for RABBIT++ and its Fig. 5 design space. */

#include <gtest/gtest.h>

#include "community/metrics.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/rabbitpp.hpp"

namespace slo::reorder
{
namespace
{

Csr
skewedCommunityGraph()
{
    // Communities + hub overlay: the kind of low-insularity input
    // RABBIT++ targets.
    return gen::temporalInteraction(4096, 64, 8.0, 0.02, 80.0, 7);
}

TEST(RabbitPlusTest, ProducesValidPermutation)
{
    const RabbitPlusResult result =
        rabbitPlusOrder(skewedCommunityGraph());
    EXPECT_TRUE(Permutation::isPermutation(result.perm.newIds()));
}

TEST(RabbitPlusTest, InsularNodesOccupyTheTailIdRange)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult result = rabbitPlusOrder(g);
    ASSERT_GT(result.numInsular, 0);
    const Index n = g.numRows();
    const Index boundary = n - result.numInsular;
    for (Index v = 0; v < n; ++v) {
        const bool in_tail = result.perm.newId(v) >= boundary;
        EXPECT_EQ(in_tail,
                  static_cast<bool>(
                      result.insular[static_cast<std::size_t>(v)]));
    }
}

TEST(RabbitPlusTest, HubsOccupyTheHeadIdRange)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult result = rabbitPlusOrder(g);
    ASSERT_GT(result.numHubs, 0);
    for (Index v = 0; v < g.numRows(); ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if (result.hub[sv] && !result.insular[sv]) {
            EXPECT_LT(result.perm.newId(v), result.numHubs);
        }
    }
}

TEST(RabbitPlusTest, PreservesRabbitRelativeOrderInsideGroups)
{
    const Csr g = skewedCommunityGraph();
    const RabbitResult rabbit = rabbitOrder(g);
    const RabbitPlusResult result = rabbitPlusFromRabbit(
        g, rabbit, {true, HubTreatment::HubGroup, 1.0});
    // Within each of the three groups, new ids must be ordered the way
    // RABBIT ordered the vertices.
    const auto rabbit_order = rabbit.perm.newToOld();
    Index last_hub = -1, last_mid = -1, last_ins = -1;
    for (Index old_id : rabbit_order) {
        const auto v = static_cast<std::size_t>(old_id);
        const Index id = result.perm.newId(old_id);
        if (result.insular[v]) {
            EXPECT_GT(id, last_ins);
            last_ins = id;
        } else if (result.hub[v]) {
            EXPECT_GT(id, last_hub);
            last_hub = id;
        } else {
            EXPECT_GT(id, last_mid);
            last_mid = id;
        }
    }
}

TEST(RabbitPlusTest, HubSortOrdersHubsByDescendingDegree)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult result = rabbitPlusOrder(
        g, {true, HubTreatment::HubSort, 1.0});
    const auto degrees = inDegrees(g);
    const auto order = result.perm.newToOld();
    for (Index i = 1; i < result.numHubs; ++i) {
        EXPECT_GE(degrees[static_cast<std::size_t>(
                      order[static_cast<std::size_t>(i - 1)])],
                  degrees[static_cast<std::size_t>(
                      order[static_cast<std::size_t>(i)])]);
    }
}

TEST(RabbitPlusTest, NoModificationsReproducesRabbit)
{
    const Csr g = skewedCommunityGraph();
    const RabbitResult rabbit = rabbitOrder(g);
    const RabbitPlusResult result = rabbitPlusFromRabbit(
        g, rabbit, {false, HubTreatment::None, 1.0});
    EXPECT_EQ(result.perm, rabbit.perm);
}

TEST(RabbitPlusTest, WithoutInsularGroupingNothingIsInsular)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult result = rabbitPlusOrder(
        g, {false, HubTreatment::HubGroup, 1.0});
    EXPECT_EQ(result.numInsular, 0);
}

TEST(RabbitPlusTest, InsularSubMatrixHasNoCrossCommunityEdges)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult result = rabbitPlusOrder(g);
    // Fig. 6's construction: mask non-zeros not connecting insular
    // nodes; by definition the remainder is intra-community.
    const Csr insular_only = g.filtered([&result](Index r, Index c) {
        return result.insular[static_cast<std::size_t>(r)] ||
               result.insular[static_cast<std::size_t>(c)];
    });
    for (Index r = 0; r < insular_only.numRows(); ++r) {
        for (Index c : insular_only.rowIndices(r)) {
            EXPECT_EQ(result.clustering.label(r),
                      result.clustering.label(c));
        }
    }
}

TEST(RabbitPlusTest, GroupingShrinksInsularCommunitySpread)
{
    // Grouping insular nodes packs each community's insular members
    // into a tighter id range than RABBIT gave the whole community.
    const Csr g = skewedCommunityGraph();
    const RabbitResult rabbit = rabbitOrder(g);
    const RabbitPlusResult result = rabbitPlusFromRabbit(
        g, rabbit, {true, HubTreatment::None, 1.0});
    EXPECT_GT(result.numInsular, 0);
    EXPECT_LT(result.numInsular, g.numRows());
}

TEST(RabbitPlusTest, HubFactorControlsHubCount)
{
    const Csr g = skewedCommunityGraph();
    const RabbitPlusResult loose = rabbitPlusOrder(
        g, {true, HubTreatment::HubGroup, 1.0});
    const RabbitPlusResult strict = rabbitPlusOrder(
        g, {true, HubTreatment::HubGroup, 4.0});
    EXPECT_GT(loose.numHubs, strict.numHubs);
}

TEST(RabbitPlusTest, DeterministicAcrossRuns)
{
    const Csr g = gen::rmatSocial(9, 8.0, 23);
    EXPECT_EQ(rabbitPlusOrder(g).perm.newIds(),
              rabbitPlusOrder(g).perm.newIds());
}

TEST(RabbitPlusTest, MismatchedRabbitResultRejected)
{
    const Csr g = skewedCommunityGraph();
    const Csr other = gen::erdosRenyi(16, 3.0, 1);
    const RabbitResult rabbit = rabbitOrder(other);
    EXPECT_THROW(rabbitPlusFromRabbit(g, rabbit, {}),
                 std::invalid_argument);
}

} // namespace
} // namespace slo::reorder
