/**
 * @file Parameterized property sweep: every technique x every generator
 * family must produce a valid symmetric reordering that preserves the
 * multiset of row degrees and the non-zero pattern up to relabelling.
 */

#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "reorder/reorder.hpp"

namespace slo::reorder
{
namespace
{

struct SweepCase
{
    std::string name;
    Technique technique;
    std::function<Csr()> build;
};

class TechniqueSweepTest : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(TechniqueSweepTest, OrderingIsAValidPermutation)
{
    const Csr g = GetParam().build();
    const Permutation p = computeOrdering(GetParam().technique, g);
    EXPECT_EQ(p.size(), g.numRows());
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
}

TEST_P(TechniqueSweepTest, ReorderingPreservesStructure)
{
    const Csr g = GetParam().build();
    const Permutation p = computeOrdering(GetParam().technique, g);
    const Csr r = g.permutedSymmetric(p);
    EXPECT_EQ(r.numNonZeros(), g.numNonZeros());
    // Degree multiset preserved.
    std::vector<Index> before, after;
    for (Index v = 0; v < g.numRows(); ++v) {
        before.push_back(g.degree(v));
        after.push_back(r.degree(v));
    }
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
    // Entry relabelling is exact.
    for (Index v = 0; v < g.numRows(); ++v) {
        for (Index c : g.rowIndices(v))
            EXPECT_TRUE(r.hasEntry(p.newId(v), p.newId(c)));
    }
}

std::vector<SweepCase>
makeCases()
{
    struct Family
    {
        std::string name;
        std::function<Csr()> build;
    };
    const std::vector<Family> families = {
        {"planted",
         [] { return gen::plantedPartition(512, 8, 8.0, 1.0, 3); }},
        {"rmat", [] { return gen::rmatSocial(9, 8.0, 5); }},
        {"grid", [] { return gen::grid2d(20, 20, 0.05, 7); }},
        {"hubstar", [] { return gen::hubStar(400, 2, 0.6, 1.0, 9); }},
        {"chain", [] { return gen::chainWithBranches(400, 0.1, 11); }},
    };
    std::vector<SweepCase> cases;
    for (Technique technique : allTechniques()) {
        for (const Family &family : families) {
            cases.push_back({techniqueName(technique) + "_" +
                                 family.name,
                             technique, family.build});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniquesAllFamilies, TechniqueSweepTest,
    ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '+')
                c = 'P';
        }
        return name;
    });

TEST(TechniqueRegistryTest, NamesRoundTrip)
{
    for (Technique technique : allTechniques()) {
        EXPECT_EQ(techniqueFromName(techniqueName(technique)),
                  technique);
    }
}

TEST(TechniqueRegistryTest, UnknownNameThrows)
{
    EXPECT_THROW(techniqueFromName("NOPE"), std::invalid_argument);
}

TEST(TechniqueRegistryTest, Figure2SetMatchesPaper)
{
    const auto techniques = figure2Techniques();
    ASSERT_EQ(techniques.size(), 6u);
    EXPECT_EQ(techniqueName(techniques[0]), "RANDOM");
    EXPECT_EQ(techniqueName(techniques[5]), "RABBIT");
}

TEST(TechniqueRegistryTest, RandomUsesSeed)
{
    const Csr g = gen::erdosRenyi(128, 4.0, 1);
    ReorderOptions a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(computeOrdering(Technique::Random, g, a).newIds(),
              computeOrdering(Technique::Random, g, b).newIds());
}

} // namespace
} // namespace slo::reorder
