/** @file Tests for the RABBIT ordering. */

#include <gtest/gtest.h>

#include "community/metrics.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/rabbit.hpp"

namespace slo::reorder
{
namespace
{

TEST(RabbitTest, ProducesValidPermutation)
{
    const Csr g = gen::rmatSocial(10, 8.0, 2);
    const RabbitResult result = rabbitOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(result.perm.newIds()));
    EXPECT_EQ(result.clustering.numNodes(), g.numRows());
}

TEST(RabbitTest, CommunitiesBecomeContiguousIdRanges)
{
    const Csr g = gen::plantedPartition(1024, 16, 10.0, 0.5, 7);
    const Csr shuffled =
        g.permutedSymmetric(Permutation::random(g.numRows(), 3));
    const RabbitResult result = rabbitOrder(shuffled);
    // Each detected community maps to a contiguous new-id interval.
    const Index k = result.clustering.numCommunities();
    std::vector<Index> min_id(static_cast<std::size_t>(k),
                              shuffled.numRows());
    std::vector<Index> max_id(static_cast<std::size_t>(k), -1);
    std::vector<Index> count(static_cast<std::size_t>(k), 0);
    for (Index v = 0; v < shuffled.numRows(); ++v) {
        const auto c =
            static_cast<std::size_t>(result.clustering.label(v));
        const Index id = result.perm.newId(v);
        min_id[c] = std::min(min_id[c], id);
        max_id[c] = std::max(max_id[c], id);
        ++count[c];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
        if (count[c] > 0) {
            EXPECT_EQ(max_id[c] - min_id[c] + 1, count[c]);
        }
    }
}

TEST(RabbitTest, RecoversShuffledPlantedCommunities)
{
    const Csr g = gen::plantedPartition(2048, 32, 12.0, 0.3, 11);
    const Csr shuffled =
        g.permutedSymmetric(Permutation::random(g.numRows(), 5));
    const RabbitResult result = rabbitOrder(shuffled);
    EXPECT_GT(community::modularity(shuffled, result.clustering), 0.8);
}

TEST(RabbitTest, ReducesAverageBandwidthOfCommunityGraph)
{
    const Csr g = gen::hierarchicalCommunity(2048, 8, 3, 10.0, 0.25, 9);
    const Csr shuffled =
        g.permutedSymmetric(Permutation::random(g.numRows(), 13));
    const double before = averageBandwidth(shuffled);
    const Csr reordered =
        shuffled.permutedSymmetric(rabbitOrder(shuffled).perm);
    EXPECT_LT(averageBandwidth(reordered), before / 2);
}

TEST(RabbitTest, SymmetrizesDirectedInput)
{
    Coo coo(6, 6);
    coo.add(0, 1);
    coo.add(1, 2);
    coo.add(3, 4);
    coo.add(4, 5);
    const Csr g = Csr::fromCoo(coo);
    const RabbitResult result = rabbitOrder(g);
    EXPECT_TRUE(Permutation::isPermutation(result.perm.newIds()));
}

TEST(RabbitTest, IsolatedVerticesKeepSingletonCommunities)
{
    Coo coo(6, 6);
    coo.addSymmetric(0, 1);
    const Csr g = Csr::fromCoo(coo);
    const RabbitResult result = rabbitOrder(g);
    // 0/1 merge; 2..5 remain singletons: 5 communities.
    EXPECT_EQ(result.clustering.numCommunities(), 5);
}

TEST(RabbitTest, DeterministicAcrossRuns)
{
    const Csr g = gen::rmatSocial(9, 10.0, 17);
    EXPECT_EQ(rabbitOrder(g).perm.newIds(),
              rabbitOrder(g).perm.newIds());
}

TEST(RabbitTest, RequiresSquare)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(rabbitOrder(rect), std::invalid_argument);
}

} // namespace
} // namespace slo::reorder
