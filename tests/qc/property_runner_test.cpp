/**
 * @file
 * The qc runner itself: seed determinism, shrinking to a minimal
 * counterexample (via a deliberately-broken in-test oracle),
 * machine-readable failure reports, and env-driven configuration.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/manifest.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

Config
fixedConfig()
{
    Config config;
    config.seed = 20260805;
    config.cases = 60;
    return config;
}

/** Rebuild a CsrSpec from its describeCsrSpec JSON (Raw kind only). */
CsrSpec
rawSpecFromJson(const obs::Json &json)
{
    CsrSpec spec;
    EXPECT_EQ(json.at("kind").asString(), "raw");
    spec.kind = MatrixKind::Raw;
    spec.rows = static_cast<Index>(json.at("rows").asInt());
    spec.cols = static_cast<Index>(json.at("cols").asInt());
    spec.avgDegree = json.at("avg_degree").asDouble();
    if (json.contains("self_loops"))
        spec.selfLoops = json.at("self_loops").asBool();
    if (json.contains("self_loop_fraction"))
        spec.selfLoopFraction = json.at("self_loop_fraction").asDouble();
    if (json.contains("duplicates"))
        spec.duplicates = json.at("duplicates").asBool();
    spec.seed = json.at("seed").asUint();
    return spec;
}

/** The deliberately-broken oracle: "no matrix has 3+ non-zeros". */
Outcome
runBrokenOracle(const std::string &name)
{
    const SpecBounds bounds;
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = fixedConfig();
    return checkProperty<CsrSpec>(
        name,
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec) {
            return build(spec).numNonZeros() < 3;
        },
        options);
}

TEST(QcRunner, ShrinkingFindsAMinimalCounterexample)
{
    const Outcome outcome = runBrokenOracle("qc.broken.nnz_below_3");
    ASSERT_FALSE(outcome.ok);
    EXPECT_GE(outcome.failedCase, 0);
    EXPECT_GT(outcome.shrinkSteps, 0) << outcome.summary();

    const auto json = obs::Json::parse(outcome.counterexample);
    ASSERT_TRUE(json.has_value()) << outcome.counterexample;
    // Shrinking must have simplified the spec: the default envelope
    // draws up to 96 rows across five kinds, but the broken oracle
    // fails for any 3-nonzero matrix, so the minimum is tiny and Raw.
    ASSERT_EQ(json->at("kind").asString(), "raw");
    EXPECT_LE(json->at("rows").asInt(), 8) << outcome.counterexample;

    // The shrunk spec must still falsify the oracle (shrinking only
    // ever replaces a counterexample with a failing candidate).
    const CsrSpec spec = rawSpecFromJson(*json);
    EXPECT_GE(build(spec).numNonZeros(), 3);
}

TEST(QcRunner, SameSeedReproducesTheSameCounterexample)
{
    const Outcome first = runBrokenOracle("qc.broken.repro");
    const Outcome second = runBrokenOracle("qc.broken.repro");
    ASSERT_FALSE(first.ok);
    EXPECT_EQ(first.failedCase, second.failedCase);
    EXPECT_EQ(first.failingCaseSeed, second.failingCaseSeed);
    EXPECT_EQ(first.counterexample, second.counterexample);
    EXPECT_EQ(first.shrinkSteps, second.shrinkSteps);
}

TEST(QcRunner, CaseSeedsDifferAcrossCasesAndProperties)
{
    const std::uint64_t a0 = detail::caseSeed(7, "prop-a", 0);
    const std::uint64_t a1 = detail::caseSeed(7, "prop-a", 1);
    const std::uint64_t b0 = detail::caseSeed(7, "prop-b", 0);
    const std::uint64_t other_run = detail::caseSeed(8, "prop-a", 0);
    EXPECT_NE(a0, a1);
    EXPECT_NE(a0, b0);
    EXPECT_NE(a0, other_run);
    EXPECT_NE(a0, std::uint64_t{7}) << "case 0 must not leak the seed";
}

TEST(QcRunner, PassingPropertyReportsAllCases)
{
    PropertyOptions<int> options;
    options.config = fixedConfig();
    const Outcome outcome = checkProperty<int>(
        "qc.trivial.int_is_small",
        [](Rng &rng) { return static_cast<int>(rng.below(100)); },
        [](int value) { return value < 100; }, options);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.cases, fixedConfig().cases);
    EXPECT_EQ(outcome.failedCase, -1);
}

TEST(QcRunner, CounterexampleReportIsEmittedWithReproEnv)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("slo-qc-report-" + std::to_string(::getpid()) + ".json");
    std::filesystem::remove(path);
    ::setenv("SLO_QC_REPORT", path.c_str(), 1);
    const Outcome outcome = runBrokenOracle("qc.broken.report");
    ::unsetenv("SLO_QC_REPORT");
    ASSERT_FALSE(outcome.ok);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no report at " << path;
    std::stringstream text;
    text << in.rdbuf();
    const auto report = obs::Json::parse(text.str());
    ASSERT_TRUE(report.has_value()) << text.str();
    EXPECT_EQ(report->at("schema").asString(),
              "slo.qc-counterexample/1");
    EXPECT_EQ(report->at("property").asString(), "qc.broken.report");
    EXPECT_EQ(report->at("seed").asUint(), fixedConfig().seed);
    EXPECT_EQ(report->at("repro_env").at("SLO_QC_SEED").asString(),
              std::to_string(fixedConfig().seed));
    EXPECT_TRUE(report->at("counterexample").isObject());
    std::filesystem::remove(path);
}

TEST(QcRunner, RunManifestRecordsSeedsAndCounterexamples)
{
    runBrokenOracle("qc.broken.manifest");
    const obs::Json manifest =
        obs::RunManifest::instance().toJson();
    ASSERT_TRUE(manifest.contains("qc"));
    const obs::Json &qc = manifest.at("qc");
    ASSERT_TRUE(qc.contains("properties"));
    ASSERT_TRUE(qc.at("properties").contains("qc.broken.manifest"));
    EXPECT_EQ(
        qc.at("properties").at("qc.broken.manifest").at("seed").asUint(),
        fixedConfig().seed);
    ASSERT_TRUE(qc.contains("counterexamples"));
    EXPECT_GE(qc.at("counterexamples").size(), std::size_t{1});
}

TEST(QcRunner, ConfigComesFromTheEnvironment)
{
    ::setenv("SLO_QC_SEED", "0xabcdef", 1);
    ::setenv("SLO_QC_CASES", "7", 1);
    const Config config = configFromEnv();
    ::unsetenv("SLO_QC_SEED");
    ::unsetenv("SLO_QC_CASES");
    EXPECT_EQ(config.seed, 0xabcdefULL);
    EXPECT_EQ(config.cases, 7);
    EXPECT_EQ(configFromEnv().cases, Config{}.cases);
    EXPECT_EQ(config.withMaxCases(3).cases, 3);
}

TEST(QcRunner, ExceptionsInsideAPropertyCountAsFailures)
{
    PropertyOptions<int> options;
    options.config = fixedConfig();
    const Outcome outcome = checkProperty<int>(
        "qc.throwing",
        [](Rng &rng) { return static_cast<int>(rng.below(10)); },
        [](int) -> bool {
            throw std::runtime_error("boom");
        },
        options);
    ASSERT_FALSE(outcome.ok);
    EXPECT_NE(outcome.message.find("boom"), std::string::npos);
}

} // namespace
} // namespace slo::qc
