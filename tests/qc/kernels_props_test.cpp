/**
 * @file
 * Kernel differential oracles: the CSR/COO/tiled/propagation-blocked
 * SpMV variants and SpMM must all agree with the double-precision
 * scalar references on qc-generated matrices, and vector permutation
 * must round-trip.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "kernels/propagation_blocking.hpp"
#include "kernels/tiled_spmv.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** Deterministic input vector in (0, 1], independent of the kernels. */
std::vector<Value>
inputVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Value &v : x)
        v = static_cast<Value>(1.0 - rng.uniform());
    return x;
}

constexpr double kTolerance = 1e-4;

TEST(QcKernelProps, SpmvVariantsAgreeWithTheScalarReference)
{
    SpecBounds bounds; // Raw included: rectangular + empty rows
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.kernels.spmv_variants_vs_reference",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const std::vector<Value> x =
                inputVector(matrix.numCols(), spec.seed ^ 0xf00d);
            const std::vector<double> want = referenceSpmv(matrix, x);

            const std::vector<Value> csr = kernels::spmvCsr(matrix, x);
            if (!nearlyEqual(csr, want, kTolerance, &message)) {
                message = "spmvCsr: " + message;
                return false;
            }

            std::vector<Value> coo(
                static_cast<std::size_t>(matrix.numRows()), 0.0f);
            kernels::spmvCoo(matrix.toCoo(), x, coo);
            if (!nearlyEqual(coo, want, kTolerance, &message)) {
                message = "spmvCoo: " + message;
                return false;
            }

            // Tile width derived from the spec seed: 1..cols+1 covers
            // single-column strips and one-strip (full-width) cases.
            Rng rng(spec.seed ^ 0x7117);
            const auto tile_cols = static_cast<Index>(
                rng.between(1, matrix.numCols() + 1));
            const kernels::TiledCsr tiled(matrix, tile_cols);
            std::vector<Value> tiled_y(
                static_cast<std::size_t>(matrix.numRows()), 0.0f);
            tiled.spmv(x, tiled_y);
            if (!nearlyEqual(tiled_y, want, kTolerance, &message)) {
                message = "tiled spmv: " + message;
                return false;
            }

            const auto bin_rows = static_cast<Index>(
                rng.between(1, matrix.numRows() + 1));
            const kernels::PropagationBlockedSpmv blocked(matrix,
                                                          bin_rows);
            std::vector<Value> blocked_y(
                static_cast<std::size_t>(matrix.numRows()), 0.0f);
            blocked.spmv(x, blocked_y);
            if (!nearlyEqual(blocked_y, want, kTolerance, &message)) {
                message = "blocked spmv: " + message;
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcKernelProps, SpmmMatchesTheScalarReference)
{
    SpecBounds bounds;
    bounds.maxRows = 48;
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.kernels.spmm_vs_reference",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            Rng rng(spec.seed ^ 0x5b3);
            const auto dense_cols =
                static_cast<Index>(rng.between(1, 8));
            const std::vector<Value> b = inputVector(
                matrix.numCols() * dense_cols, spec.seed ^ 0xbeef);
            const std::vector<double> want =
                referenceSpmm(matrix, b, dense_cols);
            std::vector<Value> c(
                static_cast<std::size_t>(matrix.numRows()) *
                    static_cast<std::size_t>(dense_cols),
                0.0f);
            kernels::spmmCsr(matrix, b, dense_cols, c);
            if (!nearlyEqual(c, want, kTolerance, &message)) {
                message = "spmmCsr: " + message;
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcKernelProps, PermuteVectorRoundTrips)
{
    PropertyOptions<Index> options;
    const Outcome outcome = checkProperty<Index>(
        "qc.kernels.permute_vector_round_trip",
        [](Rng &rng) { return static_cast<Index>(rng.below(300)); },
        [](const Index &n, std::string &message) {
            Rng rng(static_cast<std::uint64_t>(n) * 65537 + 11);
            const Permutation perm = arbitraryPermutation(rng, n);
            const std::vector<Value> x = inputVector(n, rng.next());
            const std::vector<Value> round = kernels::unpermuteVector(
                kernels::permuteVector(x, perm), perm);
            if (round != x) {
                message = "unpermute(permute(x)) != x";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
