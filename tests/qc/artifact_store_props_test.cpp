/**
 * @file
 * ArtifactStore property: a permutation that was cached, evicted under
 * size pressure, and rebuilt is bit-identical to the original. Runs
 * with SLO_NO_CACHE=1 so the rebuild is a true recompute rather than a
 * disk read-back — the determinism claim is on computeOrdering, the
 * store must merely not corrupt it.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/artifact_store.hpp"
#include "qc/qc.hpp"
#include "reorder/reorder.hpp"

namespace slo::qc
{
namespace
{

TEST(QcArtifactStoreProps, EvictedThenRebuiltPermutationIsBitIdentical)
{
    ::setenv("SLO_NO_CACHE", "1", 1);
    SpecBounds bounds;
    bounds.familiesOnly = true; // orderings expect square symmetric
    bounds.maxRows = 48;
    bounds.maxAvgDegree = 6.0;
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(25);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.artifact_store.evict_rebuild_bit_identical",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const auto builder = [&matrix] {
                return reorder::computeOrdering(
                           reorder::Technique::Rabbit, matrix)
                    .newIds();
            };

            // A store whose budget fits exactly one entry of this
            // payload's size, so the filler put below must evict it.
            const std::size_t entry_bytes =
                matrix.numRows() * sizeof(Index) + 64;
            core::ArtifactStore::Options store_options;
            store_options.maxBytes = entry_bytes;
            store_options.shards = 1;
            store_options.admitDivisor = 1;
            core::ArtifactStore store(store_options);

            const std::vector<Index> first =
                *store.getOrBuild("qc-perm", builder);
            store.put("qc-filler",
                      std::make_shared<const std::vector<Index>>(
                          std::vector<Index>(matrix.numRows(),
                                             Index{0})));
            if (store.get("qc-perm") != nullptr) {
                message = "filler put failed to evict the permutation";
                return false;
            }

            const std::vector<Index> second =
                *store.getOrBuild("qc-perm", builder);
            if (first != second) {
                message = "rebuilt permutation differs from original";
                return false;
            }
            return true;
        },
        options);
    ::unsetenv("SLO_NO_CACHE");
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
