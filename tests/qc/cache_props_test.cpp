/**
 * @file
 * Cache-simulator differential oracles: CacheSim (streaming LRU) vs.
 * the map-based reference simulator, and LRU vs. Belady's OPT bound
 * (an optimal policy never hits less) across a 100-seed sweep.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/belady.hpp"
#include "cache/cache.hpp"
#include "cache/sharded.hpp"
#include "par/thread_pool.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** Fixed irregular window: the middle half of the address space. */
void
irregularWindow(const CacheCase &value, std::uint64_t &lo,
                std::uint64_t &hi)
{
    lo = value.trace.addressSpace / 4;
    hi = value.trace.addressSpace / 2;
}

TEST(QcCacheProps, CacheSimMatchesTheReferenceLru)
{
    PropertyOptions<CacheCase> options;
    options.shrink = shrinkCacheCase;
    options.describe = describeCacheCase;
    const Outcome outcome = checkProperty<CacheCase>(
        "qc.cache.lru_vs_reference",
        [](Rng &rng) { return arbitraryCacheCase(rng, true); },
        [](const CacheCase &value, std::string &message) {
            std::uint64_t lo = 0;
            std::uint64_t hi = 0;
            irregularWindow(value, lo, hi);
            const std::vector<std::uint64_t> trace =
                buildTrace(value.trace);

            cache::CacheSim sim(value.config);
            sim.setIrregularRegion(lo, hi);
            for (const std::uint64_t addr : trace)
                sim.access(addr);
            sim.finish();

            const cache::CacheStats want =
                referenceLru(trace, value.config, lo, hi);
            return statsEqual(sim.stats(), want, &message);
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcCacheProps, BatchedAndShardedMatchTheSingleAccessPath)
{
    // The streaming refactor's core determinism claim: feeding the
    // trace through accessBatch in odd-sized chunks, or through a
    // ShardedCacheSim at any shard count (serial pool or a real
    // 4-thread pool), produces counters bit-identical to the
    // one-access-at-a-time path — which the property above pins to the
    // map-based reference oracle. Covers sectored and unsectored
    // geometries and the irregular-region accounting.
    par::ThreadPool pool(4);
    PropertyOptions<CacheCase> options;
    options.shrink = shrinkCacheCase;
    options.describe = describeCacheCase;
    const Outcome outcome = checkProperty<CacheCase>(
        "qc.cache.batched_sharded_vs_serial",
        [](Rng &rng) { return arbitraryCacheCase(rng, true); },
        [&pool](const CacheCase &value, std::string &message) {
            std::uint64_t lo = 0;
            std::uint64_t hi = 0;
            irregularWindow(value, lo, hi);
            const std::vector<std::uint64_t> trace =
                buildTrace(value.trace);

            cache::CacheSim serial(value.config);
            serial.setIrregularRegion(lo, hi);
            for (const std::uint64_t addr : trace)
                serial.access(addr);
            serial.finish();
            const cache::CacheStats want = serial.stats();

            // Odd chunk sizes so batch boundaries land mid-set-streak.
            for (const std::size_t chunk : {std::size_t{1},
                                            std::size_t{3},
                                            std::size_t{7},
                                            trace.size() + 1}) {
                cache::CacheSim batched(value.config);
                batched.setIrregularRegion(lo, hi);
                for (std::size_t i = 0; i < trace.size(); i += chunk) {
                    batched.accessBatch(
                        trace.data() + i,
                        std::min(chunk, trace.size() - i));
                }
                batched.finish();
                if (!statsEqual(batched.stats(), want, &message)) {
                    message = "accessBatch(chunk=" +
                              std::to_string(chunk) + "): " + message;
                    return false;
                }
            }

            for (const int shards : {1, 2, 3, 5}) {
                cache::ShardedCacheSim sharded(value.config, shards,
                                               &pool);
                sharded.setIrregularRegion(lo, hi);
                for (std::size_t i = 0; i < trace.size(); i += 5) {
                    sharded.accessBatch(
                        trace.data() + i,
                        std::min<std::size_t>(5, trace.size() - i));
                }
                sharded.finish();
                if (!statsEqual(sharded.stats(), want, &message)) {
                    message = "sharded(" + std::to_string(shards) +
                              "): " + message;
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcCacheProps, StreamedBeladyMatchesTraceBelady)
{
    // The two-pass streamed OPT (regenerate the stream, 4-byte next-use
    // deltas) must agree field-for-field with the materialized-trace
    // Belady it replaced.
    PropertyOptions<CacheCase> options;
    options.shrink = shrinkCacheCase;
    options.describe = describeCacheCase;
    const Outcome outcome = checkProperty<CacheCase>(
        "qc.cache.belady_streamed_vs_trace",
        [](Rng &rng) { return arbitraryCacheCase(rng, false); },
        [](const CacheCase &value, std::string &message) {
            std::uint64_t lo = 0;
            std::uint64_t hi = 0;
            irregularWindow(value, lo, hi);
            const std::vector<std::uint64_t> trace =
                buildTrace(value.trace);

            const cache::CacheStats streamed =
                cache::simulateBeladyStreamed(
                    value.config, lo, hi, trace.size() / 2,
                    [&trace](auto &&sink) {
                        for (const std::uint64_t addr : trace)
                            sink(addr);
                    });
            const cache::CacheStats want =
                cache::simulateBelady(trace, value.config, lo, hi);
            return statsEqual(streamed, want, &message);
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcCacheProps, LruNeverBeatsBelady)
{
    // The acceptance sweep: 100 distinct seeds, unsectored geometries
    // (simulateBelady rejects sectoring). OPT is optimal, so
    // hits_LRU <= hits_OPT and misses_LRU >= misses_OPT always.
    Config config = configFromEnv();
    config.cases = 100;
    PropertyOptions<CacheCase> options;
    options.shrink = shrinkCacheCase;
    options.describe = describeCacheCase;
    options.config = config;
    const Outcome outcome = checkProperty<CacheCase>(
        "qc.cache.lru_vs_belady_bound",
        [](Rng &rng) { return arbitraryCacheCase(rng, false); },
        [](const CacheCase &value, std::string &message) {
            const std::vector<std::uint64_t> trace =
                buildTrace(value.trace);

            cache::CacheSim sim(value.config);
            for (const std::uint64_t addr : trace)
                sim.access(addr);
            sim.finish();
            const cache::CacheStats lru = sim.stats();
            const cache::CacheStats opt =
                cache::simulateBelady(trace, value.config);

            if (lru.accesses != opt.accesses) {
                message = "access counts diverge";
                return false;
            }
            if (lru.hits > opt.hits) {
                message = "LRU hits " + std::to_string(lru.hits) +
                          " exceed OPT hits " +
                          std::to_string(opt.hits);
                return false;
            }
            if (lru.misses < opt.misses) {
                message = "LRU misses " + std::to_string(lru.misses) +
                          " below OPT misses " +
                          std::to_string(opt.misses);
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcCacheProps, StatsStayCoherentOnEveryGeneratedTrace)
{
    PropertyOptions<CacheCase> options;
    options.shrink = shrinkCacheCase;
    options.describe = describeCacheCase;
    const Outcome outcome = checkProperty<CacheCase>(
        "qc.cache.stats_coherence",
        [](Rng &rng) { return arbitraryCacheCase(rng, true); },
        [](const CacheCase &value, std::string &message) {
            const std::vector<std::uint64_t> trace =
                buildTrace(value.trace);
            cache::CacheSim sim(value.config);
            for (const std::uint64_t addr : trace)
                sim.access(addr);
            sim.finish();
            const cache::CacheStats &stats = sim.stats();
            if (stats.hits + stats.misses != stats.accesses) {
                message = "hits + misses != accesses";
                return false;
            }
            if (stats.deadLines > stats.linesFilled) {
                message = "more dead lines than fills";
                return false;
            }
            if (stats.evictions > stats.linesFilled) {
                message = "more evictions than fills";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
