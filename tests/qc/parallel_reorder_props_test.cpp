/**
 * @file
 * Parallel-reordering properties: the ordering builders are speculative
 * or chunk-parallel inside, so every technique must return the exact
 * same permutation whatever the worker count (the fig2 goldens depend
 * on it), BOBA must stay a valid permutation that does not lose to a
 * random shuffle on locality, and the RCM++ bi-criteria start must
 * never worsen bandwidth over the classic pseudo-peripheral one.
 *
 * Lives in the qc suite so the tsan preset (`ctest -L 'concurrency|qc'`)
 * exercises the concurrent union-find and the speculation sweeps.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matrix/properties.hpp"
#include "par/par.hpp"
#include "qc/qc.hpp"
#include "reorder/boba.hpp"
#include "reorder/locality_metrics.hpp"
#include "reorder/rcm.hpp"
#include "reorder/reorder.hpp"

namespace slo::qc
{
namespace
{

SpecBounds
orderingBounds()
{
    SpecBounds bounds;
    bounds.familiesOnly = true; // orderings expect square symmetric
    bounds.maxRows = 48;
    bounds.maxAvgDegree = 6.0;
    return bounds;
}

TEST(QcParallelReorderProps, EveryTechniqueMatchesSerialAtAnyPoolSize)
{
    const SpecBounds bounds = orderingBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(10);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.reorder.parallel_matches_serial",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            for (const reorder::Technique technique :
                 reorder::allTechniques()) {
                std::vector<Index> serial;
                {
                    par::ThreadPool pool(1);
                    const par::ScopedPoolOverride scoped(pool);
                    serial = reorder::computeOrdering(technique, matrix)
                                 .newIds();
                }
                for (int threads : {2, 4, 8}) {
                    par::ThreadPool pool(threads);
                    const par::ScopedPoolOverride scoped(pool);
                    const std::vector<Index> parallel =
                        reorder::computeOrdering(technique, matrix)
                            .newIds();
                    if (parallel != serial) {
                        message =
                            std::string(
                                reorder::techniqueName(technique)) +
                            " diverges from serial at " +
                            std::to_string(threads) + " threads";
                        return false;
                    }
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcParallelReorderProps, BobaIsValidAndDoesNotLoseToRandom)
{
    const SpecBounds bounds = orderingBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    // Locality is compared in aggregate across the generated cases:
    // tiny single-case matrices are too noisy for a per-instance
    // inequality, but summed over the run BOBA must not lose to a
    // random shuffle on the gap metric (lower = better).
    double boba_gap_sum = 0.0;
    double random_gap_sum = 0.0;
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.reorder.boba_valid_permutation",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [&](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const Permutation perm = reorder::bobaOrder(matrix);
            if (!Permutation::isPermutation(perm.newIds())) {
                message = "bobaOrder returned a non-bijection";
                return false;
            }
            boba_gap_sum += reorder::averageGapLines(
                matrix.permutedSymmetric(perm));
            random_gap_sum += reorder::averageGapLines(
                matrix.permutedSymmetric(
                    Permutation::random(matrix.numRows(), 29)));
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
    EXPECT_LE(boba_gap_sum, random_gap_sum);
}

TEST(QcParallelReorderProps, RcmBiCriteriaNeverWorseThanClassic)
{
    const SpecBounds bounds = orderingBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.reorder.rcm_bicriteria_no_worse",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const Csr graph = matrix.isSymmetricPattern()
                                  ? matrix
                                  : matrix.symmetrized();
            const Index classic =
                matrixBandwidth(graph.permutedSymmetric(reorder::rcmOrder(
                    graph, reorder::RcmStart::PseudoPeripheral)));
            const Index bi =
                matrixBandwidth(graph.permutedSymmetric(reorder::rcmOrder(
                    graph, reorder::RcmStart::BiCriteria)));
            if (bi > classic) {
                message = "bi-criteria bandwidth " +
                          std::to_string(bi) + " exceeds classic " +
                          std::to_string(classic);
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
