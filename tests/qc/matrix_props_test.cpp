/**
 * @file
 * Differential properties of the matrix layer on qc-generated inputs:
 * permutation round trips, transpose involution, and duplicate
 * summation against a naive accumulator.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** Spec + permutation seed: one generated (matrix, permutation) pair. */
struct PermCase
{
    CsrSpec spec;
    std::uint64_t permSeed = 0;
};

TEST(QcMatrixProps, PermutedSymmetricRoundTripsThroughTheInverse)
{
    SpecBounds bounds;
    bounds.familiesOnly = true; // permutedSymmetric needs square
    bounds.maxRows = 64;
    PropertyOptions<PermCase> options;
    options.describe = [](const PermCase &value) {
        obs::Json out = describeCsrSpec(value.spec);
        out["perm_seed"] = value.permSeed;
        return out;
    };
    options.shrink = [shrink = csrSpecShrinker(bounds)](
                         const PermCase &value) {
        std::vector<PermCase> out;
        for (CsrSpec &smaller : shrink(value.spec))
            out.push_back(PermCase{std::move(smaller), value.permSeed});
        return out;
    };
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<PermCase>(
        "qc.matrix.permute_round_trip",
        [&bounds](Rng &rng) {
            PermCase value;
            value.spec = arbitraryCsrSpec(rng, bounds);
            value.permSeed = rng.next();
            return value;
        },
        [](const PermCase &value, std::string &message) {
            Csr matrix = build(value.spec);
            matrix.sortRows();
            Rng perm_rng(value.permSeed);
            const Permutation perm =
                arbitraryPermutation(perm_rng, matrix.numRows());
            Csr round = matrix.permutedSymmetric(perm)
                            .permutedSymmetric(perm.inverse());
            round.sortRows();
            if (!(round == matrix)) {
                message = "A != P⁻¹(P(A))";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcMatrixProps, TransposeIsAnInvolution)
{
    SpecBounds bounds; // Raw included: rectangular shapes transpose too
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.matrix.transpose_involution",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            Csr matrix = build(spec);
            matrix.sortRows();
            Csr round = matrix.transposed().transposed();
            round.sortRows();
            if (!(round == matrix)) {
                message = "A != (Aᵀ)ᵀ";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcMatrixProps, FromCooSumMatchesANaiveAccumulator)
{
    SpecBounds bounds;
    bounds.rawOnly = true; // duplicates only exist in Raw specs
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.matrix.from_coo_sum",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Coo coo = buildCoo(spec);
            const Csr summed = Csr::fromCoo(coo, DuplicatePolicy::Sum);
            // Naive oracle: accumulate into an ordered map.
            std::map<std::pair<Index, Index>, double> cells;
            for (Offset i = 0; i < coo.numEntries(); ++i) {
                const auto entry = coo.at(i);
                cells[{entry.row, entry.col}] +=
                    static_cast<double>(entry.val);
            }
            if (static_cast<std::size_t>(summed.numNonZeros()) !=
                cells.size()) {
                message = "nnz differs from the distinct cell count";
                return false;
            }
            for (Index r = 0; r < summed.numRows(); ++r) {
                const auto cols = summed.rowIndices(r);
                const auto vals = summed.rowValues(r);
                for (std::size_t i = 0; i < cols.size(); ++i) {
                    const auto found = cells.find({r, cols[i]});
                    if (found == cells.end()) {
                        message = "cell missing from the naive sum";
                        return false;
                    }
                    const double diff = std::abs(
                        static_cast<double>(vals[i]) - found->second);
                    if (diff > 1e-4 * std::max(1.0, found->second)) {
                        message = "summed value differs from naive sum";
                        return false;
                    }
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
