/**
 * @file
 * Edge cases of the tiled/blocked SpMV kernels and their GPU
 * simulations, each checked against the scalar reference: the empty
 * matrix, all-empty rows, a single-column matrix, and a row longer
 * than one tile (so it spans several strips).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/gpu_spec.hpp"
#include "gpu/simulate_blocked.hpp"
#include "gpu/simulate_tiled.hpp"
#include "kernels/propagation_blocking.hpp"
#include "kernels/tiled_spmv.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

gpu::GpuSpec
tinySpec()
{
    return gpu::GpuSpec::a6000ScaledL2(2048);
}

std::vector<Value>
onesVector(Index n)
{
    return std::vector<Value>(static_cast<std::size_t>(n), 1.0f);
}

/** Check tiled + blocked spmv and both simulations on @p matrix. */
void
checkAllVariants(const Csr &matrix, Index tile_cols, Index bin_rows)
{
    const std::vector<Value> x = onesVector(matrix.numCols());
    const std::vector<double> want = referenceSpmv(matrix, x);
    std::string message;

    const kernels::TiledCsr tiled(matrix, tile_cols);
    EXPECT_EQ(tiled.numNonZeros(), matrix.numNonZeros());
    std::vector<Value> tiled_y(
        static_cast<std::size_t>(matrix.numRows()), 0.0f);
    tiled.spmv(x, tiled_y);
    EXPECT_TRUE(nearlyEqual(tiled_y, want, 1e-5, &message)) << message;

    const gpu::SimReport tiled_report =
        gpu::simulateTiledSpmv(tiled, tinySpec());
    const cache::CacheStats &ts = tiled_report.cacheStats;
    EXPECT_EQ(ts.hits + ts.misses, ts.accesses);
    EXPECT_EQ(tiled_report.trafficBytes, ts.fillBytes);
    EXPECT_TRUE(tiled_report.normalizedTraffic >= 0.0)
        << tiled_report.normalizedTraffic;
    EXPECT_TRUE(tiled_report.normalizedRuntime >= 0.0)
        << tiled_report.normalizedRuntime;

    if (matrix.isSquare()) {
        const kernels::PropagationBlockedSpmv blocked(matrix,
                                                      bin_rows);
        std::vector<Value> blocked_y(
            static_cast<std::size_t>(matrix.numRows()), 0.0f);
        blocked.spmv(x, blocked_y);
        EXPECT_TRUE(nearlyEqual(blocked_y, want, 1e-5, &message))
            << message;

        const gpu::SimReport blocked_report =
            gpu::simulateBlockedSpmv(blocked, tinySpec());
        const cache::CacheStats &bs = blocked_report.cacheStats;
        EXPECT_EQ(bs.hits + bs.misses, bs.accesses);
        EXPECT_EQ(blocked_report.trafficBytes, bs.fillBytes);
        EXPECT_TRUE(blocked_report.normalizedTraffic >= 0.0)
            << blocked_report.normalizedTraffic;
        EXPECT_TRUE(blocked_report.normalizedRuntime >= 0.0)
            << blocked_report.normalizedRuntime;
    }
}

TEST(QcKernelEdgeCases, EmptyMatrix)
{
    const Csr matrix(0, 0, {0}, {}, {});
    checkAllVariants(matrix, 4, 1);
}

TEST(QcKernelEdgeCases, AllEmptyRows)
{
    const Csr matrix(5, 5, {0, 0, 0, 0, 0, 0}, {}, {});
    checkAllVariants(matrix, 2, 2);
    // Even with zero non-zeros the tiled simulation still streams the
    // per-strip row bookkeeping — accesses must not be zero.
    const kernels::TiledCsr tiled(matrix, 2);
    const gpu::SimReport report =
        gpu::simulateTiledSpmv(tiled, tinySpec());
    EXPECT_GT(report.cacheStats.accesses, 0u);
}

TEST(QcKernelEdgeCases, SingleColumnRectangular)
{
    // 6 x 1: every non-empty row has its entry in column 0.
    const Csr matrix(6, 1, {0, 1, 2, 2, 3, 4, 5}, {0, 0, 0, 0, 0},
                     {1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
    checkAllVariants(matrix, 4, 1); // tile wider than the matrix
    checkAllVariants(matrix, 1, 1); // tile exactly the matrix
}

TEST(QcKernelEdgeCases, SingleColumnSquare)
{
    // All entries in column 0 of a square matrix: the irregular X
    // footprint degenerates to one line.
    const Csr matrix(6, 6, {0, 1, 2, 3, 4, 5, 6}, {0, 0, 0, 0, 0, 0},
                     {1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f});
    checkAllVariants(matrix, 2, 3);
}

TEST(QcKernelEdgeCases, RowLongerThanOneTile)
{
    // Row 0 is dense over 8 columns with tile_cols 2: it must be split
    // across 4 strips and still sum correctly.
    std::vector<Offset> offsets = {0, 8, 8, 8, 9, 9, 9, 9, 10};
    std::vector<Index> cols = {0, 1, 2, 3, 4, 5, 6, 7, 3, 6};
    std::vector<Value> vals(10, 1.0f);
    const Csr matrix(8, 8, std::move(offsets), std::move(cols),
                     std::move(vals));
    const kernels::TiledCsr tiled(matrix, 2);
    EXPECT_EQ(tiled.numTiles(), 4);
    checkAllVariants(matrix, 2, 4);

    // The dense row serializes per strip: maxRowNnz in the tiled
    // simulation is the per-strip row length, not the full row.
    const gpu::SimReport report =
        gpu::simulateTiledSpmv(tiled, tinySpec());
    EXPECT_EQ(report.maxRowNnz, 2);
}

} // namespace
} // namespace slo::qc
