/**
 * @file
 * Edge cases of the Gustavson SpGEMM kernel: the empty matrix,
 * all-empty rows, a single-column matrix, a row whose merge fan-in
 * pushes it over the dense-accumulator threshold, and the 32/64-bit
 * checkedCast seam on nnz(C) overflow.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "kernels/spgemm.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** Run both accumulator paths + the oracle on @p a for both variants. */
void
checkBothVariants(const Csr &a)
{
    std::string message;
    for (const kernels::SpgemmB variant :
         {kernels::SpgemmB::A, kernels::SpgemmB::ATranspose}) {
        const Csr b = kernels::spgemmOperandB(a, variant);
        const auto want = referenceSpgemm(a, b);

        kernels::SpgemmOptions sparse_only;
        sparse_only.denseThreshold = 1 << 30;
        const kernels::SpgemmResult sparse =
            kernels::spgemmCsr(a, b, sparse_only);
        EXPECT_TRUE(spgemmNearlyEqual(sparse.c, want, 1e-4, &message))
            << kernels::spgemmBName(variant) << ": " << message;

        kernels::SpgemmOptions dense_only;
        dense_only.denseThreshold = 1;
        const kernels::SpgemmResult dense =
            kernels::spgemmCsr(a, b, dense_only);
        EXPECT_TRUE(sparse.c == dense.c)
            << kernels::spgemmBName(variant)
            << ": accumulator paths disagree";

        EXPECT_EQ(sparse.stats.nnzC,
                  static_cast<std::uint64_t>(sparse.c.numNonZeros()));
        EXPECT_EQ(sparse.stats.fanInTotal,
                  static_cast<std::uint64_t>(a.numNonZeros()));
    }
}

TEST(SpgemmEdgeCases, EmptyMatrix)
{
    const Csr a(0, 0, {0}, {}, {});
    checkBothVariants(a);
    const kernels::SpgemmResult result =
        kernels::spgemmCsr(a, kernels::SpgemmB::A);
    EXPECT_EQ(result.c.numRows(), 0);
    EXPECT_EQ(result.c.numNonZeros(), 0);
    EXPECT_EQ(result.stats.flops, 0u);
    EXPECT_EQ(result.stats.maxFanIn, 0);
}

TEST(SpgemmEdgeCases, AllEmptyRows)
{
    const Csr a(4, 4, {0, 0, 0, 0, 0}, {}, {});
    checkBothVariants(a);
    const kernels::SpgemmResult result =
        kernels::spgemmCsr(a, kernels::SpgemmB::A);
    EXPECT_EQ(result.c.numRows(), 4);
    EXPECT_EQ(result.c.numNonZeros(), 0);
    EXPECT_EQ(result.stats.bRowFetches, 0u);
    EXPECT_EQ(result.stats.bRowReuses, 0u);
}

TEST(SpgemmEdgeCases, SingleColumn)
{
    // 3x1 times its 1x3 transpose: AAT is a full 3x3 outer product;
    // AA is undefined (1 != 3), so only the transpose variant runs.
    const Csr a(3, 1, {0, 1, 2, 3}, {0, 0, 0}, {1.0f, 2.0f, 3.0f});
    const Csr b = kernels::spgemmOperandB(
        a, kernels::SpgemmB::ATranspose);
    const auto want = referenceSpgemm(a, b);
    std::string message;
    const kernels::SpgemmResult result = kernels::spgemmCsr(a, b);
    EXPECT_TRUE(spgemmNearlyEqual(result.c, want, 1e-4, &message))
        << message;
    EXPECT_EQ(result.c.numNonZeros(), 9);
    EXPECT_EQ(result.stats.maxFanIn, 1);
}

TEST(SpgemmEdgeCases, SquareSingleColumnUse)
{
    // A square matrix whose every row references column 0: maximum
    // B-row reuse (each fetch after the first is a distance-1 reuse).
    const Csr a(3, 3, {0, 1, 2, 3}, {0, 0, 0}, {1.0f, 1.0f, 1.0f});
    checkBothVariants(a);
    const kernels::SpgemmResult result =
        kernels::spgemmCsr(a, kernels::SpgemmB::A);
    EXPECT_EQ(result.stats.bRowFetches, 3u);
    EXPECT_EQ(result.stats.bRowReuses, 2u);
    EXPECT_EQ(result.stats.maxReuseDistance, 1u);
    EXPECT_DOUBLE_EQ(result.stats.meanReuseDistance(), 1.0);
}

TEST(SpgemmEdgeCases, FanInCrossesTheDenseThreshold)
{
    // Row 0 merges every other row: with the threshold pinned below
    // its multiply count the dense accumulator handles it while the
    // remaining rows take the sort-merge path, and the result must be
    // bit-identical to the all-sparse run.
    constexpr Index n = 12;
    std::vector<Offset> offsets{0};
    std::vector<Index> cols;
    std::vector<Value> vals;
    for (Index c = 1; c < n; ++c) {
        cols.push_back(c);
        vals.push_back(1.0f);
    }
    offsets.push_back(static_cast<Offset>(cols.size()));
    for (Index r = 1; r < n; ++r) {
        cols.push_back((r + 1) % n);
        vals.push_back(2.0f);
        offsets.push_back(static_cast<Offset>(cols.size()));
    }
    const Csr a(n, n, offsets, cols, vals);

    kernels::SpgemmOptions hybrid;
    hybrid.denseThreshold = 4; // row 0 merges 11 rows -> dense path
    const kernels::SpgemmResult mixed =
        kernels::spgemmCsr(a, kernels::SpgemmB::A, hybrid);

    kernels::SpgemmOptions sparse_only;
    sparse_only.denseThreshold = 1 << 30;
    const kernels::SpgemmResult sparse =
        kernels::spgemmCsr(a, kernels::SpgemmB::A, sparse_only);

    EXPECT_TRUE(mixed.c == sparse.c);
    EXPECT_EQ(mixed.stats.maxFanIn, n - 1);

    const auto want =
        referenceSpgemm(a, kernels::spgemmOperandB(
                               a, kernels::SpgemmB::A));
    std::string message;
    EXPECT_TRUE(spgemmNearlyEqual(mixed.c, want, 1e-4, &message))
        << message;
}

TEST(SpgemmEdgeCases, TotalNnzOverflowThrows)
{
    // The 32/64-bit seam: per-row counts whose sum exceeds Offset must
    // throw ContractViolation, not wrap. (A sum overflowing even the
    // 64-bit accumulator is caught one step earlier by the same seam.)
    const std::vector<std::uint64_t> fits{1, 2, 3};
    EXPECT_EQ(kernels::spgemmTotalNnz(fits), 6);

    const std::uint64_t half =
        static_cast<std::uint64_t>(
            std::numeric_limits<Offset>::max() / 2) +
        1;
    const std::vector<std::uint64_t> overflows{half, half};
    EXPECT_THROW(static_cast<void>(kernels::spgemmTotalNnz(overflows)),
                 check::ContractViolation);

    const std::vector<std::uint64_t> wraps64{
        std::numeric_limits<std::uint64_t>::max(), 2};
    EXPECT_THROW(static_cast<void>(kernels::spgemmTotalNnz(wraps64)),
                 check::ContractViolation);
}

} // namespace
} // namespace slo::qc
