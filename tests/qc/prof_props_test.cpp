/**
 * @file
 * Properties of the slo::prof latency histogram: its quantiles must
 * track a sorted-sample oracle within the documented bucket error
 * bound, and shard merging must be deterministic — recording the same
 * multiset from one thread or many yields an identical snapshot.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "prof/histogram.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** One generated sample population. */
struct SampleCase
{
    std::size_t count = 0;
    std::uint64_t seed = 0;
};

std::vector<std::uint64_t>
randomNanos(const SampleCase &value)
{
    Rng rng(value.seed);
    std::vector<std::uint64_t> out(value.count);
    for (std::uint64_t &nanos : out) {
        // Log-uniform over ~9 decades so every bucket regime
        // (exact sub-bucket, mid, high-exponent) gets exercised.
        const double exponent = rng.uniform() * 9.0;
        nanos = static_cast<std::uint64_t>(std::pow(10.0, exponent));
    }
    return out;
}

PropertyOptions<SampleCase>
sampleOptions()
{
    PropertyOptions<SampleCase> options;
    options.describe = [](const SampleCase &value) {
        obs::Json out = obs::Json::object();
        out["count"] = value.count;
        out["seed"] = value.seed;
        return out;
    };
    options.shrink = [](const SampleCase &value) {
        std::vector<SampleCase> out;
        if (value.count > 0) {
            SampleCase smaller = value;
            smaller.count /= 2;
            out.push_back(smaller);
        }
        return out;
    };
    return options;
}

SampleCase
generateSampleCase(Rng &rng)
{
    SampleCase value;
    value.count = 1 + rng.below(3000);
    value.seed = rng.next();
    return value;
}

TEST(QcProfProps, QuantilesMatchSortedOracleWithinBucketError)
{
    const Outcome outcome = checkProperty<SampleCase>(
        "qc.prof.quantiles_vs_sorted_oracle", generateSampleCase,
        [](const SampleCase &value, std::string &message) {
            std::vector<std::uint64_t> samples = randomNanos(value);
            prof::LatencyHistogram h;
            for (std::uint64_t nanos : samples)
                h.recordNanos(nanos);
            std::sort(samples.begin(), samples.end());

            const auto snap = h.snapshot();
            for (double q : {0.5, 0.9, 0.99, 0.999}) {
                // Nearest-rank oracle, matching the snapshot's
                // 1-based rank = max(1, ceil(q * count)).
                const std::size_t rank = std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::ceil(
                           q * static_cast<double>(samples.size()))));
                const double oracle = static_cast<double>(
                    samples[std::min(rank, samples.size()) - 1]);
                const double got = snap.quantileNanos(q);
                // The histogram reports the representative of the
                // bucket holding the ranked sample, so the error is
                // bounded by the bucket's relative width (+1ns of
                // integer slack for tiny values).
                const double tolerance =
                    oracle * prof::LatencyHistogram::kRelativeError +
                    1.0;
                if (std::abs(got - oracle) > tolerance) {
                    message = "q=" + std::to_string(q) + " oracle=" +
                              std::to_string(oracle) + " got=" +
                              std::to_string(got);
                    return false;
                }
            }
            return true;
        },
        sampleOptions());
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcProfProps, ShardMergeIsDeterministicAcrossThreadCounts)
{
    const Outcome outcome = checkProperty<SampleCase>(
        "qc.prof.shard_merge_thread_invariant", generateSampleCase,
        [](const SampleCase &value, std::string &message) {
            const std::vector<std::uint64_t> samples =
                randomNanos(value);

            prof::LatencyHistogram serial;
            for (std::uint64_t nanos : samples)
                serial.recordNanos(nanos);

            prof::LatencyHistogram sharded;
            constexpr std::size_t kThreads = 4;
            std::vector<std::thread> threads;
            for (std::size_t t = 0; t < kThreads; ++t) {
                threads.emplace_back([&sharded, &samples, t] {
                    for (std::size_t i = t; i < samples.size();
                         i += kThreads)
                        sharded.recordNanos(samples[i]);
                });
            }
            for (std::thread &thread : threads)
                thread.join();

            const auto a = serial.snapshot();
            const auto b = sharded.snapshot();
            if (a.count != b.count || a.sumNanos != b.sumNanos ||
                a.minNanos != b.minNanos ||
                a.maxNanos != b.maxNanos) {
                message = "count/sum/min/max diverged: serial count " +
                          std::to_string(a.count) + " sharded " +
                          std::to_string(b.count);
                return false;
            }
            for (double q : {0.5, 0.9, 0.99, 0.999}) {
                if (a.quantileNanos(q) != b.quantileNanos(q)) {
                    message =
                        "quantile q=" + std::to_string(q) +
                        " diverged: " +
                        std::to_string(a.quantileNanos(q)) + " vs " +
                        std::to_string(b.quantileNanos(q));
                    return false;
                }
            }
            return true;
        },
        sampleOptions());
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
