/**
 * @file
 * SpGEMM properties: the Gustavson kernel against the map-based
 * differential oracle, the streamed access generator against a
 * collected-trace replay (at every shard count and pool size), and
 * determinism + stats coherence of every Simulator backend.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/sharded.hpp"
#include "gpu/gpu_spec.hpp"
#include "gpu/sim_stream.hpp"
#include "gpu/simulator.hpp"
#include "kernels/access_stream.hpp"
#include "kernels/spgemm.hpp"
#include "par/thread_pool.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** Square specs (Raw included: dup entries + self loops). */
SpecBounds
spgemmBounds()
{
    SpecBounds bounds;
    bounds.squareOnly = true; // C = A*A needs cols(A) == rows(A)
    bounds.maxRows = 40;
    bounds.maxAvgDegree = 5.0;
    return bounds;
}

/** A tiny L2 so 40-row products actually thrash it. */
gpu::GpuSpec
tinySpec()
{
    return gpu::GpuSpec::a6000ScaledL2(2048);
}

constexpr kernels::KernelKind kSpgemmKernels[] = {
    kernels::KernelKind::SpgemmAA,
    kernels::KernelKind::SpgemmAAT,
};

TEST(QcSpgemmProps, SpGemmMatchesReference)
{
    // Differential oracle over Random/Banded/PowerLaw/BlockCommunity
    // *and* Raw specs (empty rows, duplicate entries, self loops), for
    // both B variants, with the dense threshold forced to each side so
    // both accumulator paths meet the oracle and each other.
    const SpecBounds bounds = spgemmBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(25);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.spgemm.matches_reference",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr a = build(spec);
            for (const kernels::SpgemmB variant :
                 {kernels::SpgemmB::A, kernels::SpgemmB::ATranspose}) {
                const Csr b = kernels::spgemmOperandB(a, variant);
                const auto want = referenceSpgemm(a, b);

                kernels::SpgemmOptions sparse_only;
                sparse_only.denseThreshold = 1 << 30;
                const kernels::SpgemmResult sparse =
                    kernels::spgemmCsr(a, b, sparse_only);
                if (!spgemmNearlyEqual(sparse.c, want, 1e-4,
                                       &message)) {
                    message = "sort-merge path: " + message;
                    return false;
                }

                kernels::SpgemmOptions dense_only;
                dense_only.denseThreshold = 1;
                const kernels::SpgemmResult dense =
                    kernels::spgemmCsr(a, b, dense_only);
                if (!spgemmNearlyEqual(dense.c, want, 1e-4,
                                       &message)) {
                    message = "dense path: " + message;
                    return false;
                }
                if (!(sparse.c == dense.c)) {
                    message = "accumulator paths disagree bit-for-bit";
                    return false;
                }
                if (sparse.stats.nnzC !=
                    static_cast<std::uint64_t>(
                        sparse.c.numNonZeros())) {
                    message = "symbolic nnz(C) != numeric nnz(C)";
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcSpgemmProps, StreamedGenerationMatchesCollectedTrace)
{
    // The fused generator+simulator path must equal a materialized
    // trace pushed through the map-based reference LRU — and the
    // ShardedCacheSim over the same stream must match at every shard
    // count and pool size (the bit-identical-across-SLO_THREADS
    // acceptance criterion).
    const SpecBounds bounds = spgemmBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(15);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.spgemm.streamed_vs_trace",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr a = build(spec);
            const gpu::GpuSpec gpu_spec = tinySpec();
            const std::uint32_t line = gpu_spec.l2.lineBytes;
            for (const kernels::KernelKind kernel : kSpgemmKernels) {
                const Csr b = kernels::spgemmOperandB(
                    a, kernels::spgemmVariant(kernel));
                const std::vector<Index> row_nnz =
                    kernels::spgemmRowNnz(a, b);
                std::vector<std::uint64_t> counts(row_nnz.begin(),
                                                  row_nnz.end());
                const Offset nnz_c = kernels::spgemmTotalNnz(counts);
                const kernels::AddressLayout layout =
                    kernels::makeLayout(kernel, a.numRows(),
                                        a.numNonZeros(), 1, line,
                                        nnz_c);
                const kernels::StreamOptions stream_options{1, 1};

                std::vector<std::uint64_t> trace;
                kernels::forEachAccess(
                    kernel, a, layout, stream_options, line,
                    [&trace](std::uint64_t addr) {
                        trace.push_back(addr);
                    });
                const cache::CacheStats want = referenceLru(
                    trace, gpu_spec.l2, layout.xBase, layout.xEnd);

                gpu::SimOptions sim_options;
                sim_options.kernel = kernel;
                const gpu::SimReport report = gpu::simulateKernel(
                    a, gpu_spec, sim_options);
                if (!statsEqual(report.cacheStats, want, &message)) {
                    message = "fused vs trace: " + message;
                    return false;
                }

                for (const int threads : {1, 4, 8}) {
                    par::ThreadPool pool(threads);
                    for (const int shards : {1, 2, 3, 5}) {
                        cache::ShardedCacheSim sharded(gpu_spec.l2,
                                                       shards, &pool);
                        sharded.setIrregularRegion(layout.xBase,
                                                   layout.xEnd);
                        gpu::BatchSink sink(
                            gpu::kSimBatchAccesses,
                            [&sharded](const std::uint64_t *addrs,
                                       std::size_t count) {
                                sharded.accessBatch(addrs, count);
                            });
                        kernels::forEachAccess(kernel, a, b, layout,
                                               stream_options, line,
                                               sink);
                        sink.drain();
                        sharded.finish();
                        if (!statsEqual(sharded.stats(), want,
                                        &message)) {
                            message =
                                "sharded(" + std::to_string(shards) +
                                ", threads=" + std::to_string(threads) +
                                "): " + message;
                            return false;
                        }
                    }
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcSpgemmProps, EveryBackendIsDeterministicAndCoherent)
{
    // For each Simulator backend: two runs under different pool sizes
    // must serialize identically, cache counters must stay coherent,
    // and the merge stats must tie out against the kernel's ground
    // truth (fan-in total == nnz(A), nnzC == spgemmRowNnz sum,
    // flops >= nnzC).
    const SpecBounds bounds = spgemmBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(10);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.spgemm.backends_deterministic",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr a = build(spec);
            const gpu::GpuSpec gpu_spec = tinySpec();
            for (const kernels::KernelKind kernel : kSpgemmKernels) {
                const Csr b = kernels::spgemmOperandB(
                    a, kernels::spgemmVariant(kernel));
                const std::vector<Index> row_nnz =
                    kernels::spgemmRowNnz(a, b);
                std::uint64_t want_nnz_c = 0;
                for (const Index count : row_nnz)
                    want_nnz_c += static_cast<std::uint64_t>(count);

                gpu::SimOptions sim_options;
                sim_options.kernel = kernel;
                for (const gpu::SimBackend backend :
                     gpu::allBackends()) {
                    const auto simulator =
                        gpu::makeSimulator(backend, gpu_spec);
                    std::string first;
                    for (const int threads : {1, 4, 8}) {
                        par::ThreadPool pool(threads);
                        const par::ScopedPoolOverride scoped(pool);
                        const gpu::SimReport report =
                            simulator->simulate(a, sim_options);
                        const std::string dump =
                            gpu::simReportJson(report).dump();
                        if (first.empty()) {
                            first = dump;
                        } else if (dump != first) {
                            message =
                                std::string(
                                    gpu::backendName(backend)) +
                                ": report changed with pool size " +
                                std::to_string(threads);
                            return false;
                        }
                        const cache::CacheStats &stats =
                            report.cacheStats;
                        if (stats.hits + stats.misses !=
                            stats.accesses) {
                            message =
                                std::string(
                                    gpu::backendName(backend)) +
                                ": hits + misses != accesses";
                            return false;
                        }
                        if (report.streamMissBytes +
                                report.randomMissBytes !=
                            report.trafficBytes) {
                            message =
                                std::string(
                                    gpu::backendName(backend)) +
                                ": traffic split does not add up";
                            return false;
                        }
                        if (!report.hasSpgemm) {
                            message = "SpGEMM stats not populated";
                            return false;
                        }
                        if (report.spgemm.fanInTotal !=
                                static_cast<std::uint64_t>(
                                    a.numNonZeros()) ||
                            report.spgemm.bRowFetches !=
                                report.spgemm.fanInTotal) {
                            message = "fan-in total != nnz(A)";
                            return false;
                        }
                        if (report.spgemm.nnzC != want_nnz_c) {
                            message = "nnzC != spgemmRowNnz sum";
                            return false;
                        }
                        if (report.spgemm.flops <
                            report.spgemm.nnzC) {
                            message = "flops below nnz(C)";
                            return false;
                        }
                    }
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
