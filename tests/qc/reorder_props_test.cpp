/**
 * @file
 * Ordering properties on qc-generated matrices: every technique must
 * return a valid bijection (check::checkPermutation), and the
 * optimized locality metrics must agree with the naive O(n²)
 * references in qc/oracles.hpp.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "check/validators.hpp"
#include "qc/qc.hpp"
#include "reorder/locality_metrics.hpp"
#include "reorder/reorder.hpp"

namespace slo::qc
{
namespace
{

SpecBounds
orderingBounds()
{
    SpecBounds bounds;
    bounds.familiesOnly = true; // orderings expect square symmetric
    bounds.maxRows = 48;
    bounds.maxAvgDegree = 6.0;
    return bounds;
}

TEST(QcReorderProps, EveryTechniqueReturnsAValidPermutation)
{
    const SpecBounds bounds = orderingBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    // Each case sweeps all techniques; cap the case count to keep the
    // default suite quick (the nightly SLO_QC_CASES bump deepens it).
    options.config = configFromEnv().withMaxCases(15);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.reorder.all_techniques_bijective",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            for (const reorder::Technique technique :
                 reorder::allTechniques()) {
                const Permutation perm =
                    reorder::computeOrdering(technique, matrix);
                if (perm.size() != matrix.numRows()) {
                    message = std::string("size mismatch from ") +
                              reorder::techniqueName(technique);
                    return false;
                }
                check::checkPermutation(perm.newIds(),
                                        matrix.numRows(), "qc.reorder");
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcReorderProps, LocalityMetricsMatchTheNaiveReferences)
{
    SpecBounds bounds;
    bounds.maxRows = 64;
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.reorder.locality_metrics_vs_reference",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            Csr matrix = build(spec);
            matrix.sortRows(); // windowLocalityScore merges sorted rows
            const struct
            {
                const char *name;
                double got;
                double want;
            } metrics[] = {
                {"windowLocalityScore",
                 reorder::windowLocalityScore(matrix, 5),
                 referenceWindowLocalityScore(matrix, 5)},
                {"averageGapLines",
                 reorder::averageGapLines(matrix, 8),
                 referenceAverageGapLines(matrix, 8)},
                {"sameLineFraction",
                 reorder::sameLineFraction(matrix, 8),
                 referenceSameLineFraction(matrix, 8)},
                {"distinctLinesPerNonZero",
                 reorder::distinctLinesPerNonZero(matrix, 8),
                 referenceDistinctLinesPerNonZero(matrix, 8)},
            };
            for (const auto &metric : metrics) {
                if (std::abs(metric.got - metric.want) > 1e-12) {
                    message = std::string(metric.name) + ": " +
                              std::to_string(metric.got) + " vs " +
                              std::to_string(metric.want);
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
