/**
 * @file
 * RCM and SlashBurn on the degenerate graphs the qc generators can
 * produce on demand: disconnected block-diagonal graphs (planted
 * partition with zero inter-community degree) and self-loop-only
 * matrices. Both orderings must stay valid bijections, and RCM must
 * keep disconnected components contiguous.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/validators.hpp"
#include "qc/qc.hpp"
#include "reorder/rcm.hpp"
#include "reorder/reorder.hpp"
#include "reorder/slashburn.hpp"

namespace slo::qc
{
namespace
{

/** Disconnected graph: k communities, zero inter-community edges. */
CsrSpec
disconnectedSpec(Index rows, Index communities, std::uint64_t seed)
{
    CsrSpec spec;
    spec.kind = MatrixKind::BlockCommunity;
    spec.rows = spec.cols = rows;
    spec.avgDegree = 4.0;
    spec.communities = communities;
    spec.interFraction = 0.0;
    spec.seed = seed;
    return spec;
}

/** Self-loop-only matrix: every entry on the diagonal. */
CsrSpec
selfLoopOnlySpec(Index rows, std::uint64_t seed)
{
    CsrSpec spec;
    spec.kind = MatrixKind::Raw;
    spec.rows = spec.cols = rows;
    spec.avgDegree = 2.0;
    spec.selfLoops = true;
    spec.selfLoopFraction = 1.0;
    spec.seed = seed;
    return spec;
}

/** Component label per vertex via union of undirected edges. */
std::vector<Index>
componentLabels(const Csr &matrix)
{
    const Index n = matrix.numRows();
    std::vector<Index> parent(static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v)
        parent[static_cast<std::size_t>(v)] = v;
    const auto find = [&parent](Index v) {
        while (parent[static_cast<std::size_t>(v)] != v)
            v = parent[static_cast<std::size_t>(v)];
        return v;
    };
    for (Index r = 0; r < n; ++r) {
        for (const Index c : matrix.rowIndices(r)) {
            const Index a = find(r);
            const Index b = find(c);
            if (a != b)
                parent[static_cast<std::size_t>(a)] = b;
        }
    }
    std::vector<Index> labels(static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v)
        labels[static_cast<std::size_t>(v)] = find(v);
    return labels;
}

TEST(QcReorderEdgeCases, RcmOnDisconnectedGraphs)
{
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        const Csr matrix = build(disconnectedSpec(40, 5, seed));
        const Permutation perm = reorder::rcmOrder(matrix);
        check::checkPermutation(perm.newIds(), matrix.numRows(),
                                "qc.rcm");
        // RCM orders one component at a time, so in the new order the
        // component label changes at most (num_components - 1) times.
        const std::vector<Index> labels = componentLabels(matrix);
        std::vector<Index> distinct = labels;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        const Permutation inverse = perm.inverse();
        int switches = 0;
        for (Index pos = 1; pos < matrix.numRows(); ++pos) {
            const Index prev = inverse.newIds()[static_cast<
                std::size_t>(pos - 1)];
            const Index cur =
                inverse.newIds()[static_cast<std::size_t>(pos)];
            if (labels[static_cast<std::size_t>(prev)] !=
                labels[static_cast<std::size_t>(cur)])
                ++switches;
        }
        EXPECT_LT(switches, static_cast<int>(distinct.size()))
            << "RCM interleaved disconnected components (seed "
            << seed << ")";
    }
}

TEST(QcReorderEdgeCases, SlashBurnOnDisconnectedGraphs)
{
    for (const std::uint64_t seed : {7ULL, 14ULL, 21ULL}) {
        const Csr matrix = build(disconnectedSpec(48, 6, seed));
        const Permutation perm = reorder::slashBurnOrder(matrix);
        check::checkPermutation(perm.newIds(), matrix.numRows(),
                                "qc.slashburn");
    }
}

TEST(QcReorderEdgeCases, RcmOnSelfLoopOnlyMatrices)
{
    for (const std::uint64_t seed : {5ULL, 10ULL}) {
        const Csr matrix = build(selfLoopOnlySpec(24, seed));
        ASSERT_GT(matrix.numNonZeros(), 0);
        const Permutation perm = reorder::rcmOrder(matrix);
        check::checkPermutation(perm.newIds(), matrix.numRows(),
                                "qc.rcm");
    }
}

TEST(QcReorderEdgeCases, SlashBurnOnSelfLoopOnlyMatrices)
{
    for (const std::uint64_t seed : {5ULL, 10ULL}) {
        const Csr matrix = build(selfLoopOnlySpec(24, seed));
        const Permutation perm = reorder::slashBurnOrder(matrix);
        check::checkPermutation(perm.newIds(), matrix.numRows(),
                                "qc.slashburn");
    }
}

TEST(QcReorderEdgeCases, EveryTechniqueHandlesTheDegenerateShapes)
{
    // The full technique sweep on both degenerate families: nothing
    // may throw or return a non-bijection.
    std::vector<Csr> matrices;
    matrices.push_back(build(disconnectedSpec(30, 4, 3)));
    matrices.push_back(build(selfLoopOnlySpec(16, 3)));
    matrices.push_back(Csr(0, 0, {0}, {}, {}));
    for (const Csr &matrix : matrices) {
        for (const reorder::Technique technique :
             reorder::allTechniques()) {
            const Permutation perm =
                reorder::computeOrdering(technique, matrix);
            check::checkPermutation(perm.newIds(), matrix.numRows(),
                                    "qc.reorder.edge");
        }
    }
}

} // namespace
} // namespace slo::qc
