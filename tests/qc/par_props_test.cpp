/**
 * @file
 * Determinism contracts of the slo::par runtime: every primitive must
 * produce bit-identical results on a serial pool and a 4-thread pool
 * (the property behind "SLO_THREADS=1 reproduces parallel runs").
 */

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "par/par.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

/** One generated reduction problem. */
struct ReduceCase
{
    int length = 0;
    std::size_t grain = 1;
    std::uint64_t seed = 0;
};

std::vector<double>
randomDoubles(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out(static_cast<std::size_t>(n));
    for (double &v : out)
        v = rng.uniform() * 2.0 - 1.0;
    return out;
}

double
reduceWith(const std::vector<double> &data, std::size_t grain,
           par::ThreadPool &pool)
{
    return par::parallelReduce<double>(
        0, data.size(), grain, 0.0,
        [&data](std::size_t lo, std::size_t hi) {
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                sum += data[i];
            return sum;
        },
        [](double acc, double partial) { return acc + partial; },
        &pool);
}

TEST(QcParProps, ParallelReduceIsBitIdenticalAcrossThreadCounts)
{
    PropertyOptions<ReduceCase> options;
    options.describe = [](const ReduceCase &value) {
        obs::Json out = obs::Json::object();
        out["length"] = value.length;
        out["grain"] = value.grain;
        out["seed"] = value.seed;
        return out;
    };
    options.shrink = [](const ReduceCase &value) {
        std::vector<ReduceCase> out;
        if (value.length > 0) {
            ReduceCase smaller = value;
            smaller.length /= 2;
            out.push_back(smaller);
        }
        return out;
    };
    const Outcome outcome = checkProperty<ReduceCase>(
        "qc.par.reduce_thread_invariant",
        [](Rng &rng) {
            ReduceCase value;
            value.length = static_cast<int>(rng.below(5000));
            value.grain = 1 + rng.below(700);
            value.seed = rng.next();
            return value;
        },
        [](const ReduceCase &value, std::string &message) {
            const std::vector<double> data =
                randomDoubles(value.length, value.seed);
            par::ThreadPool serial(1);
            par::ThreadPool wide(4);
            const double a = reduceWith(data, value.grain, serial);
            const double b = reduceWith(data, value.grain, wide);
            if (a != b) {
                message = "serial " + std::to_string(a) +
                          " != parallel " + std::to_string(b);
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcParProps, ParallelStableSortMatchesStdStableSort)
{
    PropertyOptions<std::uint64_t> options;
    const Outcome outcome = checkProperty<std::uint64_t>(
        "qc.par.stable_sort_vs_std",
        [](Rng &rng) { return rng.next(); },
        [](const std::uint64_t &seed, std::string &message) {
            Rng rng(seed);
            // Big enough to cross the parallel-path threshold
            // sometimes; few distinct keys so stability is observable.
            const std::size_t n = rng.below(12000);
            std::vector<std::pair<int, int>> data(n);
            for (std::size_t i = 0; i < n; ++i)
                data[i] = {static_cast<int>(rng.below(16)),
                           static_cast<int>(i)};
            std::vector<std::pair<int, int>> want = data;
            const auto by_key = [](const std::pair<int, int> &a,
                                   const std::pair<int, int> &b) {
                return a.first < b.first;
            };
            std::stable_sort(want.begin(), want.end(), by_key);
            par::ThreadPool pool(4);
            par::parallelStableSort(data.begin(), data.end(), by_key,
                                    &pool);
            if (data != want) {
                message = "stable order diverged at n=" +
                          std::to_string(n);
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcParProps, ParallelForCoversEveryIndexExactlyOnce)
{
    PropertyOptions<std::uint64_t> options;
    const Outcome outcome = checkProperty<std::uint64_t>(
        "qc.par.for_covers_range",
        [](Rng &rng) { return rng.next(); },
        [](const std::uint64_t &seed, std::string &message) {
            Rng rng(seed);
            const std::size_t n = rng.below(4000);
            const std::size_t grain = 1 + rng.below(128);
            par::ThreadPool pool(4);
            std::vector<int> touched(n, 0);
            par::parallelFor(
                0, n, [&touched](std::size_t i) { touched[i] += 1; },
                {.grain = grain, .pool = &pool});
            for (std::size_t i = 0; i < n; ++i) {
                if (touched[i] != 1) {
                    message = "index " + std::to_string(i) +
                              " touched " +
                              std::to_string(touched[i]) + " times";
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
