/**
 * @file
 * Properties of the end-to-end GPU simulation: bit-exact determinism,
 * report invariants, and the Belady OPT bound (an optimal L2 never
 * produces more DRAM traffic than LRU) on qc-generated matrices.
 */

#include <string>

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gpu/gpu_spec.hpp"
#include "gpu/simulate.hpp"
#include "kernels/access_stream.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

SpecBounds
simBounds()
{
    SpecBounds bounds;
    bounds.familiesOnly = true; // simulateKernel requires square
    bounds.maxRows = 48;
    bounds.maxAvgDegree = 6.0;
    return bounds;
}

/** A tiny L2 so 48-row matrices actually thrash it. */
gpu::GpuSpec
tinySpec()
{
    return gpu::GpuSpec::a6000ScaledL2(2048);
}

constexpr kernels::KernelKind kKernels[] = {
    kernels::KernelKind::SpmvCsr,
    kernels::KernelKind::SpmvCoo,
    kernels::KernelKind::SpmmCsr,
};

TEST(QcGpuProps, SimulationIsDeterministicAndCoherent)
{
    const SpecBounds bounds = simBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(25);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.gpu.simulate_deterministic",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const gpu::GpuSpec gpu_spec = tinySpec();
            for (const kernels::KernelKind kernel : kKernels) {
                gpu::SimOptions sim_options;
                sim_options.kernel = kernel;
                const gpu::SimReport first =
                    gpu::simulateKernel(matrix, gpu_spec, sim_options);
                const gpu::SimReport second =
                    gpu::simulateKernel(matrix, gpu_spec, sim_options);
                if (gpu::simReportJson(first).dump() !=
                    gpu::simReportJson(second).dump()) {
                    message = "two identical runs diverged";
                    return false;
                }
                const cache::CacheStats &stats = first.cacheStats;
                if (stats.hits + stats.misses != stats.accesses) {
                    message = "hits + misses != accesses";
                    return false;
                }
                if (first.trafficBytes != stats.fillBytes) {
                    message = "trafficBytes != fillBytes";
                    return false;
                }
                if (first.streamMissBytes + first.randomMissBytes !=
                    first.trafficBytes) {
                    message = "traffic split does not add up";
                    return false;
                }
                if (first.l2HitRate < 0.0 || first.l2HitRate > 1.0 ||
                    first.deadLineFraction < 0.0 ||
                    first.deadLineFraction > 1.0) {
                    message = "rate outside [0, 1]";
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGpuProps, StreamedSimulationMatchesMaterializedTraceOracle)
{
    // simulateKernel never materializes the access stream; this
    // property collects the same stream into a vector and pushes it
    // through the map-based reference LRU, pinning the fused
    // generator+simulator path to trace-replay semantics end to end
    // (counters, irregular-region split and all).
    const SpecBounds bounds = simBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(25);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.gpu.streamed_vs_trace_oracle",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const gpu::GpuSpec gpu_spec = tinySpec();
            for (const kernels::KernelKind kernel : kKernels) {
                gpu::SimOptions sim_options;
                sim_options.kernel = kernel;
                const gpu::SimReport report =
                    gpu::simulateKernel(matrix, gpu_spec, sim_options);

                const kernels::AddressLayout layout =
                    kernels::makeLayout(kernel, matrix.numRows(),
                                        matrix.numNonZeros(),
                                        sim_options.denseCols,
                                        gpu_spec.l2.lineBytes);
                const kernels::StreamOptions stream_options{
                    sim_options.rowWindow, sim_options.denseCols};
                std::vector<std::uint64_t> trace;
                kernels::forEachAccess(
                    kernel, matrix, layout, stream_options,
                    gpu_spec.l2.lineBytes,
                    [&trace](std::uint64_t addr) {
                        trace.push_back(addr);
                    });

                const cache::CacheStats want = referenceLru(
                    trace, gpu_spec.l2, layout.xBase, layout.xEnd);
                if (!statsEqual(report.cacheStats, want, &message)) {
                    message = "kernel " +
                              std::to_string(static_cast<int>(kernel)) +
                              ": " + message;
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGpuProps, BeladyNeverIncreasesSimulatedTraffic)
{
    const SpecBounds bounds = simBounds();
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    options.config = configFromEnv().withMaxCases(25);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.gpu.belady_traffic_bound",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            const gpu::GpuSpec gpu_spec = tinySpec();
            for (const kernels::KernelKind kernel : kKernels) {
                gpu::SimOptions sim_options;
                sim_options.kernel = kernel;
                const gpu::SimReport lru =
                    gpu::simulateKernel(matrix, gpu_spec, sim_options);
                sim_options.useBelady = true;
                const gpu::SimReport opt =
                    gpu::simulateKernel(matrix, gpu_spec, sim_options);
                if (opt.cacheStats.accesses != lru.cacheStats.accesses) {
                    message = "LRU and OPT replayed different streams";
                    return false;
                }
                if (opt.trafficBytes > lru.trafficBytes) {
                    message = "OPT traffic " +
                              std::to_string(opt.trafficBytes) +
                              " exceeds LRU traffic " +
                              std::to_string(lru.trafficBytes);
                    return false;
                }
                if (opt.cacheStats.hits < lru.cacheStats.hits) {
                    message = "OPT hit less often than LRU";
                    return false;
                }
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

} // namespace
} // namespace slo::qc
