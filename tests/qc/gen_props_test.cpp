/**
 * @file
 * Properties of the qc generators themselves: everything they produce
 * must satisfy the repo's structural contracts (src/check validators),
 * and the Raw kind must actually cover the shapes the family
 * generators exclude (self loops, duplicates, rectangles, emptiness).
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "check/validators.hpp"
#include "qc/qc.hpp"

namespace slo::qc
{
namespace
{

TEST(QcGenProps, GeneratedCsrSatisfiesTheCsrContract)
{
    const SpecBounds bounds;
    PropertyOptions<CsrSpec> options;
    options.shrink = csrSpecShrinker(bounds);
    options.describe = describeCsrSpec;
    options.parameters = describeBounds(bounds);
    const Outcome outcome = checkProperty<CsrSpec>(
        "qc.gen.csr_contract",
        [&bounds](Rng &rng) { return arbitraryCsrSpec(rng, bounds); },
        [](const CsrSpec &spec, std::string &message) {
            const Csr matrix = build(spec);
            if (matrix.numRows() != spec.rows ||
                matrix.numCols() != spec.cols) {
                message = "generated shape does not match the spec";
                return false;
            }
            // The Csr constructor validates; run the deep validator
            // too so a relaxed constructor cannot mask a bad build.
            check::checkCsr(matrix.numRows(), matrix.numCols(),
                            matrix.rowOffsets(), matrix.colIndices(),
                            matrix.values().size(), "qc.gen");
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGenProps, GeneratedPermutationIsABijection)
{
    PropertyOptions<Index> options;
    options.describe = [](const Index &n) {
        obs::Json out = obs::Json::object();
        out["n"] = n;
        return out;
    };
    const Outcome outcome = checkProperty<Index>(
        "qc.gen.permutation_bijection",
        [](Rng &rng) { return static_cast<Index>(rng.below(200)); },
        [](const Index &n, std::string &message) {
            Rng derived(static_cast<std::uint64_t>(n) * 7919 + 1);
            const Permutation perm = arbitraryPermutation(derived, n);
            check::checkPermutation(perm.newIds(), n, "qc.gen");
            if (!perm.then(perm.inverse()).isIdentity()) {
                message = "perm ∘ perm⁻¹ is not the identity";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGenProps, GeneratedClusteringIsValid)
{
    PropertyOptions<Index> options;
    const Outcome outcome = checkProperty<Index>(
        "qc.gen.clustering_valid",
        [](Rng &rng) { return static_cast<Index>(rng.below(200)); },
        [](const Index &n) {
            Rng derived(static_cast<std::uint64_t>(n) * 104729 + 3);
            const community::Clustering clustering =
                arbitraryClustering(derived, n);
            check::checkClustering(clustering.labels(),
                                   clustering.numCommunities(),
                                   "qc.gen");
            return clustering.numNodes() == n;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGenProps, GeneratedDendrogramIsAForestWithAFullDfsOrder)
{
    PropertyOptions<Index> options;
    const Outcome outcome = checkProperty<Index>(
        "qc.gen.dendrogram_forest",
        [](Rng &rng) { return static_cast<Index>(rng.below(150)); },
        [](const Index &n, std::string &message) {
            Rng derived(static_cast<std::uint64_t>(n) * 31337 + 5);
            const community::Dendrogram dendrogram =
                arbitraryDendrogram(derived, n);
            check::checkDendrogram(dendrogram.parents(), "qc.gen");
            // The DFS order must enumerate every vertex exactly once.
            const std::vector<Index> order = dendrogram.dfsOrder();
            const Permutation as_perm = Permutation::fromNewToOld(order);
            if (as_perm.size() != n) {
                message = "dfsOrder is not a permutation of [0, n)";
                return false;
            }
            return true;
        },
        options);
    EXPECT_TRUE(outcome.ok) << outcome.summary();
}

TEST(QcGenProps, RawSpecsCoverSelfLoopsDuplicatesAndEmptyRows)
{
    // Statistical coverage check over one deterministic batch: the Raw
    // generator must exercise the shapes the family generators forbid.
    SpecBounds bounds;
    bounds.rawOnly = true;
    Rng rng(20260805);
    int with_diagonal = 0;
    int with_empty_row = 0;
    int rectangular = 0;
    int empty = 0;
    for (int i = 0; i < 120; ++i) {
        const CsrSpec spec = arbitraryCsrSpec(rng, bounds);
        const Csr matrix = build(spec);
        if (matrix.numRows() == 0 || matrix.numNonZeros() == 0)
            ++empty;
        if (matrix.numRows() != matrix.numCols())
            ++rectangular;
        bool diagonal = false;
        bool empty_row = false;
        for (Index r = 0; r < matrix.numRows(); ++r) {
            if (matrix.rowIndices(r).empty())
                empty_row = true;
            if (r < matrix.numCols() && matrix.hasEntry(r, r))
                diagonal = true;
        }
        with_diagonal += diagonal ? 1 : 0;
        with_empty_row += empty_row ? 1 : 0;
    }
    EXPECT_GT(with_diagonal, 0);
    EXPECT_GT(with_empty_row, 0);
    EXPECT_GT(rectangular, 0);
    EXPECT_GT(empty, 0);
}

TEST(QcGenProps, SelfLoopFractionOneYieldsADiagonalOnlyMatrix)
{
    CsrSpec spec;
    spec.kind = MatrixKind::Raw;
    spec.rows = spec.cols = 24;
    spec.avgDegree = 3.0;
    spec.selfLoopFraction = 1.0;
    spec.seed = 99;
    const Csr matrix = build(spec);
    ASSERT_GT(matrix.numNonZeros(), 0);
    for (Index r = 0; r < matrix.numRows(); ++r) {
        for (const Index c : matrix.rowIndices(r))
            EXPECT_EQ(c, r);
    }
}

} // namespace
} // namespace slo::qc
