/** @file Tests for the Louvain baseline community detector. */

#include <vector>

#include <gtest/gtest.h>

#include "community/aggregation.hpp"
#include "community/louvain.hpp"
#include "community/metrics.hpp"
#include "matrix/generators.hpp"
#include "par/par.hpp"

namespace slo::community
{
namespace
{

TEST(LouvainTest, FindsTwoCliques)
{
    Coo coo(12, 12);
    for (Index i = 0; i < 6; ++i) {
        for (Index j = i + 1; j < 6; ++j) {
            coo.addSymmetric(i, j);
            coo.addSymmetric(6 + i, 6 + j);
        }
    }
    coo.addSymmetric(0, 6);
    const Csr g = Csr::fromCoo(coo);
    const LouvainResult result = louvain(g);
    EXPECT_EQ(result.clustering.numCommunities(), 2);
    EXPECT_GT(result.modularity, 0.4);
}

TEST(LouvainTest, RecoversPlantedPartition)
{
    const Csr g = gen::plantedPartition(2048, 16, 12.0, 0.5, 3);
    const LouvainResult result = louvain(g);
    EXPECT_GT(result.modularity, 0.7);
    EXPECT_NEAR(result.clustering.numCommunities(), 16, 8);
}

TEST(LouvainTest, ModularityMatchesGenericMetric)
{
    const Csr g = gen::hierarchicalCommunity(512, 4, 3, 8.0, 0.3, 11);
    const LouvainResult result = louvain(g);
    EXPECT_DOUBLE_EQ(result.modularity,
                     modularity(g, result.clustering));
}

TEST(LouvainTest, ComparableToAggregationOnCommunityGraphs)
{
    // Both maximize modularity; Louvain's refinement sweeps should land
    // in the same ballpark as (usually above) single-pass aggregation.
    const Csr g = gen::plantedPartition(1024, 8, 10.0, 1.0, 21);
    const double q_louvain = louvain(g).modularity;
    const double q_agg =
        modularity(g, aggregateCommunities(g).clustering);
    EXPECT_GT(q_louvain, 0.6);
    EXPECT_GT(q_agg, 0.6);
    EXPECT_NEAR(q_louvain, q_agg, 0.15);
}

TEST(LouvainTest, EdgelessGraph)
{
    const Csr empty(4, 4, {0, 0, 0, 0, 0}, {}, {});
    const LouvainResult result = louvain(empty);
    EXPECT_EQ(result.clustering.numCommunities(), 4);
    EXPECT_EQ(result.levels, 0);
}

TEST(LouvainTest, DeterministicInSeed)
{
    const Csr g = gen::rmatSocial(9, 8.0, 5);
    LouvainOptions options;
    options.seed = 123;
    const LouvainResult a = louvain(g, options);
    const LouvainResult b = louvain(g, options);
    EXPECT_EQ(a.clustering.labels(), b.clustering.labels());
}

TEST(LouvainTest, LevelLimitRespected)
{
    const Csr g = gen::hierarchicalCommunity(512, 4, 3, 8.0, 0.3, 6);
    LouvainOptions options;
    options.maxLevels = 1;
    const LouvainResult result = louvain(g, options);
    EXPECT_LE(result.levels, 1);
}

TEST(LouvainTest, ParallelPoolMatchesSerialBitForBit)
{
    // The speculative move sweep must reproduce the serial sweep's
    // labels exactly at any worker count.
    const Csr g = gen::hierarchicalCommunity(1024, 4, 3, 8.0, 0.3, 17);
    std::vector<Index> serial_labels;
    double serial_modularity = 0.0;
    {
        par::ThreadPool pool(1);
        const par::ScopedPoolOverride scoped(pool);
        const LouvainResult r = louvain(g);
        serial_labels = r.clustering.labels();
        serial_modularity = r.modularity;
    }
    for (int threads : {2, 4, 8}) {
        par::ThreadPool pool(threads);
        const par::ScopedPoolOverride scoped(pool);
        const LouvainResult r = louvain(g);
        EXPECT_EQ(r.clustering.labels(), serial_labels)
            << "threads=" << threads;
        EXPECT_EQ(r.modularity, serial_modularity)
            << "threads=" << threads;
    }
}

TEST(LouvainTest, RequiresSquareMatrix)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(louvain(rect), std::invalid_argument);
}

} // namespace
} // namespace slo::community
