/** @file Tests for the merge dendrogram and its DFS ordering. */

#include <gtest/gtest.h>

#include "community/dendrogram.hpp"

namespace slo::community
{
namespace
{

TEST(DendrogramTest, StartsAsSingletonForest)
{
    const Dendrogram d(4);
    EXPECT_EQ(d.numNodes(), 4);
    for (Index v = 0; v < 4; ++v) {
        EXPECT_TRUE(d.isRoot(v));
        EXPECT_EQ(d.parent(v), -1);
        EXPECT_TRUE(d.children(v).empty());
    }
    EXPECT_EQ(d.roots(), (std::vector<Index>{0, 1, 2, 3}));
}

TEST(DendrogramTest, MergeRecordsParentAndChild)
{
    Dendrogram d(4);
    d.merge(1, 0);
    EXPECT_FALSE(d.isRoot(1));
    EXPECT_EQ(d.parent(1), 0);
    EXPECT_EQ(d.children(0), (std::vector<Index>{1}));
    EXPECT_EQ(d.roots(), (std::vector<Index>{0, 2, 3}));
}

TEST(DendrogramTest, MergeValidation)
{
    Dendrogram d(3);
    d.merge(1, 0);
    EXPECT_THROW(d.merge(1, 2), std::invalid_argument); // not a root
    EXPECT_THROW(d.merge(2, 2), std::invalid_argument); // self
    EXPECT_THROW(d.merge(3, 0), std::invalid_argument); // out of range
}

TEST(DendrogramTest, SubtreeSize)
{
    Dendrogram d(5);
    d.merge(1, 0);
    d.merge(2, 1);
    d.merge(3, 0);
    EXPECT_EQ(d.subtreeSize(0), 4);
    EXPECT_EQ(d.subtreeSize(1), 2);
    EXPECT_EQ(d.subtreeSize(4), 1);
}

TEST(DendrogramTest, DfsVisitsParentBeforeChildren)
{
    Dendrogram d(5);
    d.merge(1, 0);
    d.merge(2, 1);
    d.merge(3, 0);
    // Tree rooted at 0: children [1,3]; 1's child [2]; root 4 alone.
    const auto order = d.dfsOrder(RootOrder::ByVertexId);
    EXPECT_EQ(order, (std::vector<Index>{0, 1, 2, 3, 4}));
}

TEST(DendrogramTest, DfsKeepsSubtreesContiguous)
{
    Dendrogram d(6);
    d.merge(1, 0);
    d.merge(4, 3);
    d.merge(5, 3);
    const auto order = d.dfsOrder(RootOrder::ByVertexId);
    // {0,1} contiguous, {3,4,5} contiguous, 2 alone.
    const auto pos = [&order](Index v) {
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] == v)
                return static_cast<Index>(i);
        }
        return Index{-1};
    };
    EXPECT_EQ(std::abs(pos(0) - pos(1)), 1);
    const Index lo = std::min({pos(3), pos(4), pos(5)});
    const Index hi = std::max({pos(3), pos(4), pos(5)});
    EXPECT_EQ(hi - lo, 2);
}

TEST(DendrogramTest, LargestFirstRootOrder)
{
    Dendrogram d(6);
    d.merge(4, 3);
    d.merge(5, 3); // subtree of 3 has size 3
    d.merge(1, 0); // subtree of 0 has size 2
    const auto order = d.dfsOrder(RootOrder::BySubtreeSizeDesc);
    EXPECT_EQ(order[0], 3); // biggest tree first
    EXPECT_EQ(order.size(), 6u);
}

TEST(DendrogramTest, DfsIsAPermutation)
{
    Dendrogram d(100);
    for (Index v = 1; v < 100; v += 2)
        d.merge(v, v - 1);
    const auto order = d.dfsOrder();
    std::vector<bool> seen(100, false);
    for (Index v : order) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 100);
        ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(v)] = true;
    }
}

TEST(DendrogramTest, ToClusteringGroupsByRoot)
{
    Dendrogram d(5);
    d.merge(1, 0);
    d.merge(2, 1);
    d.merge(4, 3);
    const Clustering c = d.toClustering();
    EXPECT_EQ(c.numCommunities(), 2);
    EXPECT_EQ(c.label(0), c.label(1));
    EXPECT_EQ(c.label(0), c.label(2));
    EXPECT_EQ(c.label(3), c.label(4));
    EXPECT_NE(c.label(0), c.label(3));
}

TEST(DendrogramTest, DeepChainClustering)
{
    Dendrogram d(64);
    for (Index v = 1; v < 64; ++v)
        d.merge(v, v - 1); // one long chain
    const Clustering c = d.toClustering();
    EXPECT_EQ(c.numCommunities(), 1);
    const auto order = d.dfsOrder();
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 63);
}

TEST(DendrogramTest, ClusteringAtDepthZeroMatchesRoots)
{
    Dendrogram d(6);
    d.merge(1, 0);
    d.merge(2, 1);
    d.merge(4, 3);
    const Clustering by_root = d.toClustering();
    const Clustering at_zero = d.clusteringAtDepth(0);
    for (Index u = 0; u < 6; ++u) {
        for (Index v = 0; v < 6; ++v) {
            EXPECT_EQ(by_root.label(u) == by_root.label(v),
                      at_zero.label(u) == at_zero.label(v));
        }
    }
}

TEST(DendrogramTest, DeeperCutsAreFiner)
{
    // Chain 0 <- 1 <- 2 <- 3 (each merged into the previous).
    Dendrogram d(4);
    d.merge(1, 0);
    d.merge(2, 1);
    d.merge(3, 2);
    EXPECT_EQ(d.clusteringAtDepth(0).numCommunities(), 1);
    // depth 1: {0}, {1,2,3}
    const Clustering c1 = d.clusteringAtDepth(1);
    EXPECT_EQ(c1.numCommunities(), 2);
    EXPECT_EQ(c1.label(2), c1.label(1));
    EXPECT_EQ(c1.label(3), c1.label(1));
    EXPECT_NE(c1.label(0), c1.label(1));
    // depth >= 3: all singletons
    EXPECT_EQ(d.clusteringAtDepth(3).numCommunities(), 4);
}

TEST(DendrogramTest, DepthCutsMonotonicallyRefine)
{
    Dendrogram d(16);
    for (Index v = 1; v < 16; ++v)
        d.merge(v, (v - 1) / 2); // binary-heap-shaped tree
    Index previous = 0;
    for (Index depth = 0; depth < 6; ++depth) {
        const Index count =
            d.clusteringAtDepth(depth).numCommunities();
        EXPECT_GE(count, previous);
        previous = count;
    }
    EXPECT_EQ(previous, 16);
}

} // namespace
} // namespace slo::community
