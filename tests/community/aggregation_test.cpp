/** @file Tests for RABBIT-style incremental community aggregation. */

#include <gtest/gtest.h>

#include <vector>

#include "community/aggregation.hpp"
#include "community/metrics.hpp"
#include "matrix/generators.hpp"
#include "par/par.hpp"

namespace slo::community
{
namespace
{

Csr
twoCliquesWithBridge(Index clique)
{
    Coo coo(clique * 2, clique * 2);
    for (Index i = 0; i < clique; ++i) {
        for (Index j = i + 1; j < clique; ++j) {
            coo.addSymmetric(i, j);
            coo.addSymmetric(clique + i, clique + j);
        }
    }
    coo.addSymmetric(0, clique);
    return Csr::fromCoo(coo);
}

TEST(AggregationTest, FindsTheTwoCliques)
{
    const AggregationResult result =
        aggregateCommunities(twoCliquesWithBridge(8));
    EXPECT_EQ(result.clustering.numCommunities(), 2);
    // Each clique is one community.
    for (Index v = 1; v < 8; ++v)
        EXPECT_EQ(result.clustering.label(v), result.clustering.label(0));
    for (Index v = 9; v < 16; ++v)
        EXPECT_EQ(result.clustering.label(v), result.clustering.label(8));
    EXPECT_NE(result.clustering.label(0), result.clustering.label(8));
    EXPECT_EQ(result.numMerges, 14);
}

TEST(AggregationTest, DendrogramMatchesClustering)
{
    const AggregationResult result =
        aggregateCommunities(twoCliquesWithBridge(6));
    const Clustering from_tree = result.dendrogram.toClustering();
    EXPECT_EQ(from_tree.numCommunities(),
              result.clustering.numCommunities());
    // Same partition up to label names.
    for (Index u = 0; u < 12; ++u) {
        for (Index v = 0; v < 12; ++v) {
            EXPECT_EQ(result.clustering.label(u) ==
                          result.clustering.label(v),
                      from_tree.label(u) == from_tree.label(v));
        }
    }
}

TEST(AggregationTest, RecoversPlantedPartition)
{
    const Index n = 2048;
    const Index comms = 16;
    const Csr g = gen::plantedPartition(n, comms, 12.0, 0.5, 77);
    const AggregationResult result = aggregateCommunities(g);
    const double q = modularity(g, result.clustering);
    EXPECT_GT(q, 0.7);
    const double ins = insularity(g, result.clustering);
    EXPECT_GT(ins, 0.8);
}

TEST(AggregationTest, ModularityBeatsTrivialClusterings)
{
    const Csr g = gen::hierarchicalCommunity(1024, 4, 3, 10.0, 0.3, 5);
    const AggregationResult result = aggregateCommunities(g);
    EXPECT_GT(modularity(g, result.clustering),
              modularity(g, Clustering::whole(g.numRows())));
    EXPECT_GT(modularity(g, result.clustering),
              modularity(g, Clustering::singletons(g.numRows())));
}

TEST(AggregationTest, EdgelessGraphStaysSingletons)
{
    const Csr empty(5, 5, {0, 0, 0, 0, 0, 0}, {}, {});
    const AggregationResult result = aggregateCommunities(empty);
    EXPECT_EQ(result.clustering.numCommunities(), 5);
    EXPECT_EQ(result.numMerges, 0);
}

TEST(AggregationTest, EmptyGraph)
{
    const AggregationResult result = aggregateCommunities(Csr());
    EXPECT_EQ(result.clustering.numNodes(), 0);
}

TEST(AggregationTest, MaxCommunitySizeCapsMerges)
{
    const Csr g = twoCliquesWithBridge(8);
    AggregationOptions options;
    options.maxCommunitySize = 4;
    const AggregationResult result = aggregateCommunities(g, options);
    for (Index size : result.clustering.communitySizes())
        EXPECT_LE(size, 4);
}

TEST(AggregationTest, StarGraphCollapsesToOneCommunity)
{
    // The mawi failure mode (Sec. V-B): a hub-dominated graph ends up
    // as one giant community covering nearly everything (the paper's
    // mawi: largest community ~98% of the matrix, insularity 0.988).
    const Csr g = gen::hubStar(512, 1, 0.95, 0.0, 9);
    const AggregationResult result = aggregateCommunities(g);
    const CommunitySizeStats stats =
        communitySizeStats(result.clustering);
    EXPECT_GT(stats.maxSizeFraction, 0.9);
    // And insularity is trivially high despite the useless structure.
    EXPECT_GT(insularity(g, result.clustering), 0.9);
}

TEST(AggregationTest, DeterministicAcrossRuns)
{
    const Csr g = gen::rmatSocial(9, 8.0, 13);
    const AggregationResult a = aggregateCommunities(g);
    const AggregationResult b = aggregateCommunities(g);
    EXPECT_EQ(a.clustering.labels(), b.clustering.labels());
    EXPECT_EQ(a.numMerges, b.numMerges);
}

TEST(AggregationTest, ParallelPoolMatchesSerialBitForBit)
{
    // The speculative sweep must reproduce the serial merge sequence
    // exactly (goldens depend on the RABBIT permutation).
    const Csr g = gen::hierarchicalCommunity(2048, 4, 3, 10.0, 0.3, 7);
    std::vector<Index> serial_labels;
    std::vector<Index> serial_parents;
    Index serial_merges = 0;
    {
        par::ThreadPool pool(1);
        const par::ScopedPoolOverride scoped(pool);
        const AggregationResult r = aggregateCommunities(g);
        serial_labels = r.clustering.labels();
        serial_parents = r.dendrogram.parents();
        serial_merges = r.numMerges;
    }
    for (int threads : {2, 4, 8}) {
        par::ThreadPool pool(threads);
        const par::ScopedPoolOverride scoped(pool);
        const AggregationResult r = aggregateCommunities(g);
        EXPECT_EQ(r.clustering.labels(), serial_labels)
            << "threads=" << threads;
        EXPECT_EQ(r.dendrogram.parents(), serial_parents)
            << "threads=" << threads;
        EXPECT_EQ(r.numMerges, serial_merges) << "threads=" << threads;
    }
}

TEST(AggregationTest, RequiresSquareMatrix)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(aggregateCommunities(rect), std::invalid_argument);
}

} // namespace
} // namespace slo::community
