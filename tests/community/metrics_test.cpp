/** @file Tests for modularity, insularity, and insular-node metrics. */

#include <gtest/gtest.h>

#include "community/metrics.hpp"
#include "matrix/generators.hpp"

namespace slo::community
{
namespace
{

/** Two disconnected triangles: vertices {0,1,2} and {3,4,5}. */
Csr
twoTriangles()
{
    Coo coo(6, 6);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(1, 2);
    coo.addSymmetric(0, 2);
    coo.addSymmetric(3, 4);
    coo.addSymmetric(4, 5);
    coo.addSymmetric(3, 5);
    return Csr::fromCoo(coo);
}

/** The two triangles joined by one bridge edge (2,3). */
Csr
bridgedTriangles()
{
    Coo coo(6, 6);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(1, 2);
    coo.addSymmetric(0, 2);
    coo.addSymmetric(3, 4);
    coo.addSymmetric(4, 5);
    coo.addSymmetric(3, 5);
    coo.addSymmetric(2, 3);
    return Csr::fromCoo(coo);
}

Clustering
triangleSplit()
{
    return Clustering({0, 0, 0, 1, 1, 1});
}

TEST(MetricsTest, InsularityOfPerfectSplitIsOne)
{
    EXPECT_DOUBLE_EQ(insularity(twoTriangles(), triangleSplit()), 1.0);
}

TEST(MetricsTest, InsularityCountsCrossEdges)
{
    // 7 undirected edges, 1 crossing: insularity = 6/7.
    EXPECT_DOUBLE_EQ(insularity(bridgedTriangles(), triangleSplit()),
                     6.0 / 7.0);
}

TEST(MetricsTest, InsularityOfWholeGraphCommunityIsOne)
{
    EXPECT_DOUBLE_EQ(
        insularity(bridgedTriangles(), Clustering::whole(6)), 1.0);
}

TEST(MetricsTest, InsularityOfSingletonsIsZero)
{
    EXPECT_DOUBLE_EQ(
        insularity(twoTriangles(), Clustering::singletons(6)), 0.0);
}

TEST(MetricsTest, InsularityOfEdgelessGraphIsOne)
{
    const Csr empty(4, 4, {0, 0, 0, 0, 0}, {}, {});
    EXPECT_DOUBLE_EQ(insularity(empty, Clustering::singletons(4)), 1.0);
}

TEST(MetricsTest, InsularityRangeOnRealGraph)
{
    const Csr g = gen::rmatSocial(10, 8.0, 3);
    const Clustering c = Clustering::contiguousBlocks(g.numRows(), 64);
    const double ins = insularity(g, c);
    EXPECT_GE(ins, 0.0);
    EXPECT_LE(ins, 1.0);
}

TEST(MetricsTest, ModularityOfPerfectSplitIsHalf)
{
    // Two equal disconnected cliques: Q = 1 - 1/k = 0.5 for k=2.
    EXPECT_NEAR(modularity(twoTriangles(), triangleSplit()), 0.5, 1e-12);
}

TEST(MetricsTest, ModularityOfWholeGraphIsZero)
{
    EXPECT_NEAR(modularity(bridgedTriangles(), Clustering::whole(6)),
                0.0, 1e-12);
}

TEST(MetricsTest, ModularityPrefersTheTrueSplit)
{
    const Csr g = bridgedTriangles();
    const double good = modularity(g, triangleSplit());
    const double bad = modularity(g, Clustering({0, 1, 0, 1, 0, 1}));
    EXPECT_GT(good, bad);
    EXPECT_GT(good, 0.3);
}

TEST(MetricsTest, MetricsRejectSizeMismatch)
{
    EXPECT_THROW(insularity(twoTriangles(), Clustering::whole(5)),
                 std::invalid_argument);
    EXPECT_THROW(modularity(twoTriangles(), Clustering::whole(5)),
                 std::invalid_argument);
    EXPECT_THROW(insularNodes(twoTriangles(), Clustering::whole(5)),
                 std::invalid_argument);
}

TEST(MetricsTest, InsularNodesExcludeBridgeEndpoints)
{
    const auto insular = insularNodes(bridgedTriangles(),
                                      triangleSplit());
    EXPECT_EQ(insular,
              (std::vector<bool>{true, true, false, false, true, true}));
}

TEST(MetricsTest, IsolatedNodesAreInsular)
{
    Coo coo(3, 3);
    coo.addSymmetric(0, 1);
    const auto insular =
        insularNodes(Csr::fromCoo(coo), Clustering({0, 1, 0}));
    // 0 and 1 straddle communities; 2 is isolated and insular.
    EXPECT_EQ(insular, (std::vector<bool>{false, false, true}));
}

TEST(MetricsTest, InsularNodeFraction)
{
    EXPECT_DOUBLE_EQ(
        insularNodeFraction(bridgedTriangles(), triangleSplit()),
        4.0 / 6.0);
    EXPECT_DOUBLE_EQ(
        insularNodeFraction(twoTriangles(), triangleSplit()), 1.0);
}

TEST(MetricsTest, Figure1WorkedExample)
{
    // Sec. V-A: "the insularity value of the graph after community-based
    // matrix reordering is 0.83 (20/24)": 24 stored entries, 20 intra.
    // Build a 9-node graph with 12 undirected edges, 2 crossing.
    Coo coo(9, 9);
    // community 0: {0,1,2} triangle
    coo.addSymmetric(0, 1);
    coo.addSymmetric(1, 2);
    coo.addSymmetric(0, 2);
    // community 1: {3,4,5} triangle + extra edge
    coo.addSymmetric(3, 4);
    coo.addSymmetric(4, 5);
    coo.addSymmetric(3, 5);
    // community 2: {6,7,8} triangle
    coo.addSymmetric(6, 7);
    coo.addSymmetric(7, 8);
    coo.addSymmetric(6, 8);
    // one more intra edge to reach 10 intra
    coo.addSymmetric(0, 1); // duplicate ignored after dedup? keep distinct:
    const Clustering c({0, 0, 0, 1, 1, 1, 2, 2, 2});
    // 9 intra edges + 2 cross edges
    coo.addSymmetric(2, 3);
    coo.addSymmetric(5, 6);
    Csr g = Csr::fromCoo(coo, DuplicatePolicy::Sum);
    // 10 distinct undirected intra? (0,1) duplicate collapsed -> 9 intra.
    EXPECT_NEAR(insularity(g, c), 18.0 / 22.0, 1e-12);
}

TEST(MetricsTest, ConductanceOfPerfectSplitIsZero)
{
    EXPECT_DOUBLE_EQ(meanConductance(twoTriangles(), triangleSplit()),
                     0.0);
}

TEST(MetricsTest, ConductanceCountsCut)
{
    // Each triangle: cut 1, volume 7 -> phi = 1/7 each.
    EXPECT_NEAR(meanConductance(bridgedTriangles(), triangleSplit()),
                1.0 / 7.0, 1e-12);
}

TEST(MetricsTest, ConductanceOfWholeGraphIsZero)
{
    // Single community holds all volume: no denominator, reported 0.
    EXPECT_DOUBLE_EQ(
        meanConductance(bridgedTriangles(), Clustering::whole(6)),
        0.0);
}

TEST(MetricsTest, ConductanceWorsensWithBadSplit)
{
    const Csr g = bridgedTriangles();
    EXPECT_GT(meanConductance(g, Clustering({0, 1, 0, 1, 0, 1})),
              meanConductance(g, triangleSplit()));
}

TEST(MetricsTest, ConductanceRejectsSizeMismatch)
{
    EXPECT_THROW(meanConductance(twoTriangles(), Clustering::whole(5)),
                 std::invalid_argument);
}

} // namespace
} // namespace slo::community
