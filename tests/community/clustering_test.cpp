/** @file Tests for Clustering and community size statistics. */

#include <gtest/gtest.h>

#include "community/clustering.hpp"

namespace slo::community
{
namespace
{

TEST(ClusteringTest, ConstructFromLabels)
{
    const Clustering c({0, 1, 1, 2});
    EXPECT_EQ(c.numNodes(), 4);
    EXPECT_EQ(c.numCommunities(), 3);
    EXPECT_EQ(c.label(2), 1);
    EXPECT_EQ(c[3], 2);
}

TEST(ClusteringTest, RejectsNegativeLabels)
{
    EXPECT_THROW(Clustering({0, -1}), std::invalid_argument);
}

TEST(ClusteringTest, SingletonsAndWhole)
{
    const Clustering s = Clustering::singletons(3);
    EXPECT_EQ(s.numCommunities(), 3);
    EXPECT_EQ(s.label(2), 2);
    const Clustering w = Clustering::whole(3);
    EXPECT_EQ(w.numCommunities(), 1);
    EXPECT_EQ(w.label(2), 0);
}

TEST(ClusteringTest, ContiguousBlocks)
{
    const Clustering c = Clustering::contiguousBlocks(10, 4);
    EXPECT_EQ(c.numCommunities(), 3);
    EXPECT_EQ(c.label(3), 0);
    EXPECT_EQ(c.label(4), 1);
    EXPECT_EQ(c.label(9), 2);
}

TEST(ClusteringTest, CommunitySizes)
{
    const Clustering c({0, 2, 2, 2});
    EXPECT_EQ(c.communitySizes(), (std::vector<Index>{1, 0, 3}));
}

TEST(ClusteringTest, CompactedDropsGapsByFirstAppearance)
{
    const Clustering c({5, 3, 5, 0});
    const Clustering d = c.compacted();
    EXPECT_EQ(d.numCommunities(), 3);
    EXPECT_EQ(d.labels(), (std::vector<Index>{0, 1, 0, 2}));
}

TEST(ClusteringTest, MembersGroupsVertices)
{
    const Clustering c({1, 0, 1});
    const auto members = c.members();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0], (std::vector<Index>{1}));
    EXPECT_EQ(members[1], (std::vector<Index>{0, 2}));
}

TEST(ClusteringTest, SizeStatsIgnoreEmptyCommunities)
{
    const Clustering c({0, 2, 2, 2}); // community 1 empty
    const CommunitySizeStats stats = communitySizeStats(c);
    EXPECT_EQ(stats.numCommunities, 2);
    EXPECT_DOUBLE_EQ(stats.avgSize, 2.0);
    EXPECT_EQ(stats.maxSize, 3);
    EXPECT_DOUBLE_EQ(stats.maxSizeFraction, 0.75);
    EXPECT_DOUBLE_EQ(stats.avgSizeFraction, 0.5);
}

TEST(ClusteringTest, SizeStatsOnEmptyClustering)
{
    const CommunitySizeStats stats = communitySizeStats(Clustering());
    EXPECT_EQ(stats.numCommunities, 0);
    EXPECT_DOUBLE_EQ(stats.avgSize, 0.0);
}

} // namespace
} // namespace slo::community
