#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace slo::obs
{
namespace
{

/** Resets the process-wide manifest around each test. */
class ManifestTest : public ::testing::Test
{
  protected:
    void SetUp() override { RunManifest::instance().reset(); }
    void TearDown() override { RunManifest::instance().reset(); }
};

TEST_F(ManifestTest, SlugifyProducesFilesystemSafeNames)
{
    EXPECT_EQ(slugify("fig2_dram_traffic"), "fig2_dram_traffic");
    EXPECT_EQ(slugify("Bench Name (v2)!"), "bench_name_v2");
    EXPECT_EQ(slugify("___"), "run");
    EXPECT_EQ(slugify(""), "run");
}

TEST_F(ManifestTest, BuildInfoIsPopulated)
{
    const BuildInfo info = buildInfo();
    EXPECT_FALSE(info.gitSha.empty());
    EXPECT_FALSE(info.hostname.empty());
    EXPECT_FALSE(info.compiler.empty());
}

TEST_F(ManifestTest, ContextIsStickyAndOverwritable)
{
    setContext("matrix", "wiki-talk");
    EXPECT_EQ(context("matrix"), "wiki-talk");
    setContext("matrix", "road-usa");
    EXPECT_EQ(context("matrix"), "road-usa");
    EXPECT_EQ(context("unset-key"), "");
}

TEST_F(ManifestTest, ScopedContextRestoresThePreviousValue)
{
    clearContext();
    setContext("matrix", "outer");
    {
        const ScopedContext inner("matrix", "inner");
        EXPECT_EQ(context("matrix"), "inner");
    }
    EXPECT_EQ(context("matrix"), "outer");
    // Restores on unwinding too — a throwing grid cell must not leave
    // its matrix name behind in the caller's attribution.
    try {
        const ScopedContext inner("matrix", "throwing");
        throw std::runtime_error("cell failed");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(context("matrix"), "outer");
    // A key with no previous value goes back to unset ("").
    {
        const ScopedContext fresh("fresh-key", "value");
        EXPECT_EQ(context("fresh-key"), "value");
    }
    EXPECT_EQ(context("fresh-key"), "");
    clearContext();
}

TEST_F(ManifestTest, RoundTripsThroughFile)
{
    RunManifest &manifest = RunManifest::instance();
    EXPECT_FALSE(manifest.began());
    manifest.begin("fig2_dram_traffic");
    EXPECT_TRUE(manifest.began());
    EXPECT_EQ(manifest.benchName(), "fig2_dram_traffic");

    manifest.set("scale", "small");
    manifest.set("num_matrices", 2u);
    manifest.recordPhase("wiki-talk", "corpus.build", 0.125);
    manifest.recordPhase("wiki-talk", "simulate", 0.25);
    manifest.recordPhase("wiki-talk", "simulate", 0.25); // accumulates

    Json report = Json::object();
    report["traffic_bytes"] = 4096u;
    report["normalized_traffic"] = 1.5;
    manifest.addSimulation("wiki-talk", std::move(report));

    const std::string path =
        testing::TempDir() + "/slo_manifest_roundtrip.json";
    manifest.writeFile(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = Json::parse(buffer.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;

    EXPECT_EQ(parsed->at("schema").asString(), "slo.run-manifest/2");
    EXPECT_EQ(parsed->at("bench").asString(), "fig2_dram_traffic");
    EXPECT_FALSE(parsed->at("started_at").asString().empty());
    EXPECT_FALSE(parsed->at("git_sha").asString().empty());
    EXPECT_FALSE(parsed->at("hostname").asString().empty());
    EXPECT_TRUE(parsed->at("build").contains("compiler"));
    EXPECT_EQ(parsed->at("scale").asString(), "small");
    EXPECT_EQ(parsed->at("num_matrices").asUint(), 2u);

    const Json &matrix = parsed->at("matrices").at("wiki-talk");
    EXPECT_DOUBLE_EQ(
        matrix.at("phases").at("corpus.build").asDouble(), 0.125);
    EXPECT_DOUBLE_EQ(matrix.at("phases").at("simulate").asDouble(), 0.5);
    const Json &sims = matrix.at("simulations");
    ASSERT_EQ(sims.size(), 1u);
    EXPECT_EQ(sims.at(0).at("traffic_bytes").asUint(), 4096u);
    EXPECT_TRUE(parsed->contains("metrics"));

    std::remove(path.c_str());
}

TEST_F(ManifestTest, PhaseCountersAccumulateNumericMembers)
{
    RunManifest &manifest = RunManifest::instance();
    manifest.begin("bench");

    Json first = Json::object();
    first["cycles"] = 100u;
    first["utime_seconds"] = 0.25;
    first["note"] = "a";
    manifest.recordPhaseCounters("m", "simulate", first);

    Json second = Json::object();
    second["cycles"] = 50u;
    second["utime_seconds"] = 0.25;
    second["note"] = "b";
    manifest.recordPhaseCounters("m", "simulate", second);

    const Json doc = manifest.toJson();
    const Json &delta =
        doc.at("matrices").at("m").at("counters").at("simulate");
    // Numeric members add like recordPhase (a phase run repeatedly
    // reports its total); non-numeric members overwrite.
    EXPECT_DOUBLE_EQ(delta.at("cycles").asDouble(), 150.0);
    EXPECT_DOUBLE_EQ(delta.at("utime_seconds").asDouble(), 0.5);
    EXPECT_EQ(delta.at("note").asString(), "b");
}

TEST_F(ManifestTest, PreEmissionHooksRunAndSurviveThrows)
{
    RunManifest &manifest = RunManifest::instance();
    manifest.begin("bench");
    // Registered hooks capture locals: clear them again before leaving
    // the test so no later emitAll runs a dangling closure.
    clearPreEmissionHooks();
    int calls = 0;
    addPreEmissionHook([&calls] { ++calls; });
    addPreEmissionHook([] { throw std::runtime_error("hook broke"); });
    addPreEmissionHook([&calls] { ++calls; });
    // A throwing hook is caught and logged; later hooks still run.
    runPreEmissionHooks();
    EXPECT_EQ(calls, 2);
    runPreEmissionHooks();
    EXPECT_EQ(calls, 4);
    clearPreEmissionHooks();
}

TEST_F(ManifestTest, ResetClearsEverything)
{
    RunManifest &manifest = RunManifest::instance();
    manifest.begin("something");
    manifest.recordPhase("m", "p", 1.0);
    manifest.reset();
    EXPECT_FALSE(manifest.began());
    EXPECT_EQ(manifest.benchName(), "");
    EXPECT_EQ(manifest.toJson().at("matrices").size(), 0u);
}

} // namespace
} // namespace slo::obs
