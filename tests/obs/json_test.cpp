#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace slo::obs
{
namespace
{

TEST(JsonTest, BuildsAndDumpsCompactDocument)
{
    Json doc = Json::object();
    doc["name"] = "corpus";
    doc["count"] = 3;
    doc["ratio"] = 0.5;
    doc["ok"] = true;
    doc["missing"] = nullptr;
    Json list = Json::array();
    list.push(1);
    list.push("two");
    doc["list"] = std::move(list);

    // std::map keys come out sorted, so the dump is deterministic.
    EXPECT_EQ(doc.dump(),
              R"({"count":3,"list":[1,"two"],"missing":null,)"
              R"("name":"corpus","ok":true,"ratio":0.5})");
}

TEST(JsonTest, RoundTripsThroughParse)
{
    Json doc = Json::object();
    doc["text"] = "line\nbreak \"quoted\" \\slash\\";
    doc["big"] = std::uint64_t{18446744073709551615ULL};
    doc["negative"] = std::int64_t{-9007199254740993LL};
    doc["pi"] = 3.140625; // exactly representable
    Json nested = Json::object();
    nested["empty_array"] = Json::array();
    nested["empty_object"] = Json::object();
    doc["nested"] = std::move(nested);

    const std::string text = doc.dump(2);
    std::string error;
    const auto parsed = Json::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->dump(), doc.dump());
    // 64-bit integers survive exactly (they exceed a double mantissa).
    EXPECT_EQ(parsed->at("big").asUint(), 18446744073709551615ULL);
    EXPECT_EQ(parsed->at("negative").asInt(), -9007199254740993LL);
    EXPECT_EQ(parsed->at("text").asString(),
              "line\nbreak \"quoted\" \\slash\\");
}

TEST(JsonTest, ParsesEscapesAndUnicode)
{
    const auto parsed =
        Json::parse(R"({"s":"a\tbAé","n":-0.25e2})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->at("s").asString(), "a\tbA\xc3\xa9");
    EXPECT_DOUBLE_EQ(parsed->at("n").asDouble(), -25.0);
}

TEST(JsonTest, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(Json::parse("", &error).has_value());
    EXPECT_FALSE(Json::parse("{", &error).has_value());
    EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
    EXPECT_FALSE(Json::parse(R"({"a":1,})", &error).has_value());
    EXPECT_FALSE(Json::parse(R"({"a" 1})", &error).has_value());
    EXPECT_FALSE(Json::parse("[1] trailing", &error).has_value());
    EXPECT_FALSE(Json::parse("nul", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(JsonTest, AccessorsThrowOnMissingEntries)
{
    Json doc = Json::object();
    doc["present"] = 1;
    EXPECT_TRUE(doc.contains("present"));
    EXPECT_FALSE(doc.contains("absent"));
    EXPECT_THROW(doc.at("absent"), std::out_of_range);

    Json list = Json::array();
    list.push(7);
    EXPECT_EQ(list.at(0).asInt(), 7);
    EXPECT_THROW(list.at(1), std::out_of_range);
}

TEST(JsonTest, NumericCoercions)
{
    EXPECT_DOUBLE_EQ(Json(7).asDouble(), 7.0);
    EXPECT_EQ(Json(7.0).asInt(), 7);
    EXPECT_EQ(Json(std::uint64_t{7}).asInt(), 7);
    EXPECT_EQ(Json(7).asUint(), 7u);
}

} // namespace
} // namespace slo::obs
