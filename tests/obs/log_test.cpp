#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace slo::obs
{
namespace
{

/** Captures log output and restores the default sink/level on exit. */
class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previous_ = logLevel();
        setLogSink(&captured_);
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        setLogLevel(previous_);
    }

    std::ostringstream captured_;
    LogLevel previous_ = LogLevel::Info;
};

TEST_F(LogTest, LevelFilteringSuppressesLessSevereMessages)
{
    setLogLevel(LogLevel::Warn);
    SLO_LOG_ERROR("test", "visible error");
    SLO_LOG_WARN("test", "visible warn");
    SLO_LOG_INFO("test", "hidden info");
    SLO_LOG_DEBUG("test", "hidden debug");

    const std::string out = captured_.str();
    EXPECT_NE(out.find("visible error"), std::string::npos);
    EXPECT_NE(out.find("visible warn"), std::string::npos);
    EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything)
{
    setLogLevel(LogLevel::Off);
    SLO_LOG_ERROR("test", "nope");
    EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LogTest, MessagesCarryLevelAndComponentTags)
{
    setLogLevel(LogLevel::Debug);
    SLO_LOG_DEBUG("corpus", "built " << 3 << " matrices");
    EXPECT_EQ(captured_.str(),
              "[slo][debug][corpus] built 3 matrices\n");
}

TEST_F(LogTest, ParseLogLevelHandlesNamesAndFallback)
{
    EXPECT_EQ(parseLogLevel("off", LogLevel::Info), LogLevel::Off);
    EXPECT_EQ(parseLogLevel("error", LogLevel::Info), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("WARN", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("trace", LogLevel::Info), LogLevel::Trace);
    EXPECT_EQ(parseLogLevel("bogus", LogLevel::Debug), LogLevel::Debug);
}

TEST_F(LogTest, LogEnabledMatchesActiveLevel)
{
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Trace));
}

} // namespace
} // namespace slo::obs
