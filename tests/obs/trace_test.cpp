#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "obs/json.hpp"

namespace slo::obs
{
namespace
{

/** Forces collection on and clears the buffer around each test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setTraceEnabled(true);
        traceReset();
    }

    void
    TearDown() override
    {
        traceReset();
        setTraceEnabled(false);
    }
};

TEST_F(TraceTest, SpansNestWithIncreasingDepth)
{
    {
        SLO_SPAN("outer");
        {
            SLO_SPAN("inner");
        }
        {
            SLO_SPAN("sibling");
        }
    }
    auto events = traceEvents();
    ASSERT_EQ(events.size(), 3u);

    const auto find = [&](const std::string &name) {
        return *std::find_if(events.begin(), events.end(),
                             [&](const TraceEvent &e) {
                                 return e.name == name;
                             });
    };
    EXPECT_EQ(find("outer").depth, 0);
    EXPECT_EQ(find("inner").depth, 1);
    EXPECT_EQ(find("sibling").depth, 1);
    // The outer span closes last, so it spans its children.
    EXPECT_GE(find("outer").durMicros, find("inner").durMicros);
}

TEST_F(TraceTest, DisabledSpansRecordNothingButStillTime)
{
    setTraceEnabled(false);
    {
        const Span span("quiet");
        EXPECT_GE(span.elapsedSeconds(), 0.0);
    }
    setTraceEnabled(true);
    EXPECT_TRUE(traceEvents().empty());
}

TEST_F(TraceTest, TraceJsonIsAValidChromeTraceDocument)
{
    {
        SLO_SPAN("phase.one");
        SLO_SPAN("phase.two");
    }

    const std::string text = traceJson().dump(2);
    std::string error;
    const auto parsed = Json::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;

    const Json &events = parsed->at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 2u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        EXPECT_TRUE(event.at("name").isString());
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_EQ(event.at("cat").asString(), "slo");
        EXPECT_GE(event.at("ts").asDouble(), 0.0);
        EXPECT_GE(event.at("dur").asDouble(), 0.0);
        EXPECT_TRUE(event.at("pid").isNumber());
        EXPECT_TRUE(event.at("tid").isNumber());
        EXPECT_TRUE(event.at("args").at("depth").isNumber());
    }
    EXPECT_EQ(parsed->at("displayTimeUnit").asString(), "ms");
}

TEST_F(TraceTest, CounterSamplesRenderAsCounterEvents)
{
    emitCounter("pool.runs", 3.0);
    emitCounter("pool.runs", 7.0);

    const Json doc = traceJson();
    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        EXPECT_EQ(event.at("ph").asString(), "C");
        EXPECT_EQ(event.at("name").asString(), "pool.runs");
        EXPECT_TRUE(event.at("args").at("value").isNumber());
    }
    EXPECT_DOUBLE_EQ(events.at(0).at("args").at("value").asDouble(),
                     3.0);
    EXPECT_DOUBLE_EQ(events.at(1).at("args").at("value").asDouble(),
                     7.0);
}

TEST_F(TraceTest, CounterSamplesAreDroppedWhenDisabled)
{
    setTraceEnabled(false);
    emitCounter("quiet.counter", 1.0);
    setTraceEnabled(true);
    EXPECT_TRUE(traceEvents().empty());
}

TEST_F(TraceTest, ThreadNamesBecomeMetadataEvents)
{
    setThreadName("par.worker/0");
    setThreadName("par.worker/0-renamed"); // last call per thread wins
    {
        SLO_SPAN("work");
    }

    const Json doc = traceJson();
    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    // Metadata events come first so viewers name tracks before use.
    const Json &meta = events.at(0);
    EXPECT_EQ(meta.at("ph").asString(), "M");
    EXPECT_EQ(meta.at("name").asString(), "thread_name");
    EXPECT_EQ(meta.at("args").at("name").asString(),
              "par.worker/0-renamed");
    EXPECT_EQ(events.at(1).at("ph").asString(), "X");
}

TEST_F(TraceTest, ElapsedSecondsGrowsMonotonically)
{
    const Span span("timer");
    const double first = span.elapsedSeconds();
    const double second = span.elapsedSeconds();
    EXPECT_GE(second, first);
    EXPECT_GE(first, 0.0);
}

} // namespace
} // namespace slo::obs
