#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace slo::obs
{
namespace
{

/** Runs against the process-wide registry; clears it around each test. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::instance().reset(); }
    void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterAccumulatesExactlyAcrossThreads)
{
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 100000;

    Counter &hits = counter("test.hits");
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            // Re-resolve by name: all threads must get the same object.
            Counter &c = counter("test.hits");
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(hits.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, RegistryReturnsStableReferences)
{
    Counter &a = counter("test.same");
    Counter &b = counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);

    Gauge &g = gauge("test.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(gauge("test.gauge").value(), 2.5);
}

TEST_F(MetricsTest, HistogramBucketsAndStats)
{
    Histogram &h =
        MetricsRegistry::instance().histogram("test.h", {1.0, 10.0});
    h.observe(0.5);
    h.observe(0.7);
    h.observe(5.0);
    h.observe(100.0); // overflow bucket

    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.2);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxSample(), 100.0);
    const auto counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 3u); // two bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
}

TEST_F(MetricsTest, SnapshotContainsAllMetricTypes)
{
    counter("test.c").add(3);
    gauge("test.g").set(1.5);
    histogram("test.h").observe(0.25);

    const Json snap = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.at("counters").at("test.c").asUint(), 3u);
    EXPECT_DOUBLE_EQ(snap.at("gauges").at("test.g").asDouble(), 1.5);
    EXPECT_EQ(snap.at("histograms").at("test.h").at("count").asUint(),
              1u);
}

TEST_F(MetricsTest, HistogramJsonCarriesOrderedQuantiles)
{
    Histogram &h = histogram("test.quantiles");
    // 1..100 ms: quantiles land inside the default log buckets and the
    // interpolated estimates must stay ordered and within [min, max].
    for (int i = 1; i <= 100; ++i)
        h.observe(static_cast<double>(i) / 1000.0);

    const Json j = h.toJson();
    ASSERT_TRUE(j.contains("quantiles"));
    const Json &q = j.at("quantiles");
    const double p50 = q.at("p50").asDouble();
    const double p90 = q.at("p90").asDouble();
    const double p99 = q.at("p99").asDouble();
    const double p999 = q.at("p999").asDouble();
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_GE(p50, j.at("min").asDouble());
    EXPECT_LE(p999, j.at("max").asDouble());
    // p50 of a uniform 1..100 ms sweep is ~50 ms; the log buckets are
    // coarse (decades), so just require the right order of magnitude.
    EXPECT_GT(p50, 0.005);
    EXPECT_LT(p50, 0.1);
}

TEST_F(MetricsTest, EmptyHistogramEmitsNoQuantiles)
{
    const Json j = histogram("test.empty").toJson();
    EXPECT_FALSE(j.contains("quantiles"));
    EXPECT_EQ(j.at("count").asUint(), 0u);
}

TEST_F(MetricsTest, JsonlEmitsOneValidObjectPerLine)
{
    counter("test.c").add(7);
    gauge("test.g").set(0.5);
    histogram("test.h").observe(2.0);

    std::ostringstream out;
    MetricsRegistry::instance().writeJsonl(out);

    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        std::string error;
        const auto parsed = Json::parse(line, &error);
        ASSERT_TRUE(parsed.has_value()) << error << ": " << line;
        EXPECT_TRUE(parsed->contains("type"));
        EXPECT_TRUE(parsed->contains("name"));
    }
    EXPECT_EQ(lines, 3u);
}

} // namespace
} // namespace slo::obs
