/**
 * @file
 * Unit tests of the Gustavson SpGEMM kernel: a hand-computed product,
 * operand-B construction, the symbolic pass, the merge statistics, and
 * the streamed access generator's count/region accounting.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/access_stream.hpp"
#include "kernels/spgemm.hpp"
#include "matrix/generators.hpp"

namespace slo::kernels
{
namespace
{

/**
 * [ 1 2 0 ]       [ 1  2  6 ]
 * [ 0 0 3 ]   A^2=[ 3  6  0 ]
 * [ 1 2 0 ]       [ 1  2  6 ]
 */
Csr
tinyMatrix()
{
    return Csr(3, 3, {0, 2, 3, 5}, {0, 1, 2, 0, 1},
               {1.0f, 2.0f, 3.0f, 1.0f, 2.0f});
}

TEST(SpgemmTest, HandComputedSquare)
{
    const SpgemmResult result =
        spgemmCsr(tinyMatrix(), SpgemmB::A);
    ASSERT_EQ(result.c.numRows(), 3);
    const std::vector<Offset> offsets{0, 3, 5, 8};
    EXPECT_EQ(result.c.rowOffsets(), offsets);
    const std::vector<Index> cols{0, 1, 2, 0, 1, 0, 1, 2};
    EXPECT_EQ(result.c.colIndices(), cols);
    const std::vector<Value> vals{1.0f, 2.0f, 6.0f, 3.0f,
                                  6.0f, 1.0f, 2.0f, 6.0f};
    EXPECT_EQ(result.c.values(), vals);
    EXPECT_EQ(result.stats.nnzC, 8u);
    EXPECT_EQ(result.stats.flops, 8u);
    EXPECT_EQ(result.stats.fanInTotal, 5u);
    EXPECT_EQ(result.stats.maxFanIn, 2);
    EXPECT_EQ(result.stats.maxRowNnz, 3);
}

TEST(SpgemmTest, OperandBVariants)
{
    const Csr a = tinyMatrix();
    EXPECT_EQ(spgemmOperandB(a, SpgemmB::A), a);
    Csr at = a.transposed();
    at.sortRows();
    EXPECT_EQ(spgemmOperandB(a, SpgemmB::ATranspose), at);
    EXPECT_STREQ(spgemmBName(SpgemmB::A), "A");
    EXPECT_STREQ(spgemmBName(SpgemmB::ATranspose), "AT");
}

TEST(SpgemmTest, SymbolicPassMatchesNumericRows)
{
    const Csr a = gen::rmatSocial(9, 4.0, 17);
    for (const SpgemmB variant :
         {SpgemmB::A, SpgemmB::ATranspose}) {
        const Csr b = spgemmOperandB(a, variant);
        const std::vector<Index> counts = spgemmRowNnz(a, b);
        const SpgemmResult result = spgemmCsr(a, b);
        ASSERT_EQ(static_cast<Index>(counts.size()), a.numRows());
        for (Index r = 0; r < a.numRows(); ++r)
            EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                      result.c.degree(r));
    }
}

TEST(SpgemmTest, StreamStatsMatchNumericKernel)
{
    const Csr a = gen::plantedPartition(512, 8, 6.0, 0.8, 3);
    const Csr b = spgemmOperandB(a, SpgemmB::A);
    const SpgemmStats stream = spgemmStreamStats(a, b);
    const SpgemmResult numeric = spgemmCsr(a, b);
    EXPECT_EQ(stream.flops, numeric.stats.flops);
    EXPECT_EQ(stream.nnzC, numeric.stats.nnzC);
    EXPECT_EQ(stream.fanInTotal, numeric.stats.fanInTotal);
    EXPECT_EQ(stream.maxFanIn, numeric.stats.maxFanIn);
    EXPECT_EQ(stream.maxRowNnz, numeric.stats.maxRowNnz);
    EXPECT_EQ(stream.bRowFetches, stream.fanInTotal);
    EXPECT_LE(stream.bRowReuses, stream.bRowFetches);
}

TEST(SpgemmTest, AccessStreamCountAndRegions)
{
    // Stream shape: 3 accesses per row (bounds pair + C descriptor),
    // 4 per A non-zero (coord, value, B bounds pair), 2 per merged
    // element, 2 per C non-zero. Exactly the B-array accesses land in
    // the irregular [xBase, xEnd) window.
    const Csr a = gen::rmatSocial(8, 5.0, 29);
    const std::uint32_t line = 32;
    for (const KernelKind kind :
         {KernelKind::SpgemmAA, KernelKind::SpgemmAAT}) {
        const Csr b = spgemmOperandB(a, spgemmVariant(kind));
        const SpgemmStats stats = spgemmStreamStats(a, b);
        const auto nnz_c = static_cast<Offset>(stats.nnzC);
        const AddressLayout layout = makeLayout(
            kind, a.numRows(), a.numNonZeros(), 1, line, nnz_c);
        ASSERT_LT(layout.xBase, layout.xEnd);

        std::uint64_t total = 0;
        std::uint64_t irregular = 0;
        forEachAccess(kind, a, layout, StreamOptions{}, line,
                      [&](std::uint64_t addr) {
                          ++total;
                          if (layout.isIrregular(addr))
                              ++irregular;
                      });
        const std::uint64_t want_total =
            static_cast<std::uint64_t>(a.numRows()) * 3 +
            static_cast<std::uint64_t>(a.numNonZeros()) * 4 +
            stats.flops * 2 + stats.nnzC * 2;
        EXPECT_EQ(total, want_total);
        // B bounds pair per A non-zero + coords/values per element.
        const std::uint64_t want_irregular =
            static_cast<std::uint64_t>(a.numNonZeros()) * 2 +
            stats.flops * 2;
        EXPECT_EQ(irregular, want_irregular);

        // The caller-held-B overload replays the identical stream.
        std::vector<std::uint64_t> direct;
        forEachAccess(kind, a, layout, StreamOptions{}, line,
                      [&direct](std::uint64_t addr) {
                          direct.push_back(addr);
                      });
        std::vector<std::uint64_t> held;
        forEachAccess(kind, a, b, layout, StreamOptions{}, line,
                      [&held](std::uint64_t addr) {
                          held.push_back(addr);
                      });
        EXPECT_EQ(direct, held);
    }
}

TEST(SpgemmTest, RejectsMismatchedInnerDimensions)
{
    const Csr a(2, 3, {0, 1, 2}, {0, 2}, {1.0f, 1.0f});
    const Csr b(2, 2, {0, 1, 2}, {0, 1}, {1.0f, 1.0f});
    EXPECT_THROW(static_cast<void>(spgemmCsr(a, b)),
                 std::invalid_argument);
    EXPECT_THROW(static_cast<void>(spgemmRowNnz(a, b)),
                 std::invalid_argument);
    EXPECT_THROW(static_cast<void>(spgemmStreamStats(a, b)),
                 std::invalid_argument);
}

} // namespace
} // namespace slo::kernels
