/** @file Tests for propagation-blocked SpMV. */

#include <gtest/gtest.h>

#include "gpu/simulate_blocked.hpp"
#include "kernels/kernels.hpp"
#include "kernels/propagation_blocking.hpp"
#include "matrix/generators.hpp"
#include "matrix/rng.hpp"

namespace slo::kernels
{
namespace
{

TEST(PropagationBlockingTest, MatchesPlainSpmv)
{
    // Asymmetric values: catches push/pull transpose mistakes.
    Coo coo(64, 64);
    Rng rng(3);
    for (int e = 0; e < 400; ++e) {
        coo.add(static_cast<Index>(rng.below(64)),
                static_cast<Index>(rng.below(64)),
                static_cast<Value>(rng.uniform()) + 0.1f);
    }
    const Csr m = Csr::fromCoo(coo, DuplicatePolicy::Sum);
    std::vector<Value> x(64);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i % 7) * 0.5f + 0.25f;
    const auto expect = spmvCsr(m, x);
    for (Index bin_rows : {8, 17, 64, 200}) {
        const PropagationBlockedSpmv blocked(m, bin_rows);
        std::vector<Value> y(64, 0.0f);
        blocked.spmv(x, y);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], expect[i], 1e-3f)
                << "bin_rows " << bin_rows;
    }
}

TEST(PropagationBlockingTest, MatchesOnLargerRandomMatrix)
{
    const Csr m = gen::temporalInteraction(4096, 64, 8.0, 0.02, 50.0,
                                           7);
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>((i * 31) % 97) * 0.01f;
    const auto expect = spmvCsr(m, x);
    const PropagationBlockedSpmv blocked(m, 512);
    std::vector<Value> y(x.size(), 0.0f);
    blocked.spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], expect[i], 1e-2f);
}

TEST(PropagationBlockingTest, BinCountAndTraffic)
{
    const Csr m = gen::erdosRenyi(1000, 6.0, 5);
    const PropagationBlockedSpmv blocked(m, 256);
    EXPECT_EQ(blocked.numBins(), 4);
    EXPECT_EQ(blocked.binTrafficBytes(),
              2ULL * static_cast<std::uint64_t>(m.numNonZeros()) * 8);
}

TEST(PropagationBlockingTest, RejectsBadBinRows)
{
    const Csr m = gen::erdosRenyi(64, 4.0, 1);
    EXPECT_THROW(PropagationBlockedSpmv(m, 0), std::invalid_argument);
}

TEST(BlockedSimulateTest, TrafficIsOrderingInsensitive)
{
    const Csr m = gen::plantedPartition(32768, 64, 10.0, 1.0, 9);
    const Csr shuffled = m.permutedSymmetric(
        Permutation::random(m.numRows(), 3));
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const auto bin_rows = static_cast<Index>(
        spec.l2.capacityBytes / (2 * kElemBytes));
    const double natural =
        gpu::simulateBlockedSpmv(
            kernels::PropagationBlockedSpmv(m, bin_rows), spec)
            .normalizedTraffic;
    const double random =
        gpu::simulateBlockedSpmv(
            kernels::PropagationBlockedSpmv(shuffled, bin_rows), spec)
            .normalizedTraffic;
    // Blocking's traffic barely moves with ordering (that's its whole
    // point) — in contrast to the unblocked kernel.
    EXPECT_NEAR(natural, random, 0.3);
    const double unblocked_random =
        gpu::simulateKernel(shuffled, spec).normalizedTraffic;
    EXPECT_LT(random, unblocked_random);
}

TEST(BlockedSimulateTest, PaysStreamingOverheadOnGoodOrderings)
{
    const Csr m = gen::plantedPartition(32768, 64, 10.0, 1.0, 9);
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const double blocked =
        gpu::simulateBlockedSpmv(
            kernels::PropagationBlockedSpmv(m, 8192), spec)
            .normalizedTraffic;
    const double unblocked =
        gpu::simulateKernel(m, spec).normalizedTraffic;
    EXPECT_GT(blocked, unblocked);
}

} // namespace
} // namespace slo::kernels
