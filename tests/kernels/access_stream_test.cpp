/** @file Tests for the kernel access-stream generators and layouts. */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/access_stream.hpp"
#include "matrix/generators.hpp"

namespace slo::kernels
{
namespace
{

/** [. x .; x . x; . x .] ring-of-3-ish path. */
Csr
pathMatrix()
{
    Coo coo(3, 3);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(1, 2);
    return Csr::fromCoo(coo);
}

std::vector<std::uint64_t>
collect(const Csr &m, KernelKind kind, const StreamOptions &options)
{
    const AddressLayout layout = makeLayout(
        kind, m.numRows(), m.numNonZeros(), options.denseCols, 32);
    std::vector<std::uint64_t> trace;
    switch (kind) {
      case KernelKind::SpmvCsr:
        spmvCsrStream(m, layout, options,
                      [&trace](std::uint64_t a) { trace.push_back(a); });
        break;
      case KernelKind::SpmvCoo:
        spmvCooStream(m.toCoo(), layout,
                      [&trace](std::uint64_t a) { trace.push_back(a); });
        break;
      case KernelKind::SpmmCsr:
        spmmCsrStream(m, layout, options, 32,
                      [&trace](std::uint64_t a) { trace.push_back(a); });
        break;
      case KernelKind::SpgemmAA:
      case KernelKind::SpgemmAAT:
        spgemmCsrStream(m, spgemmOperandB(m, spgemmVariant(kind)),
                        layout,
                        [&trace](std::uint64_t a) { trace.push_back(a); });
        break;
    }
    return trace;
}

TEST(LayoutTest, RegionsAreDisjointAndLineAligned)
{
    const AddressLayout layout =
        makeLayout(KernelKind::SpmvCsr, 1000, 5000, 1, 32);
    EXPECT_EQ(layout.xBase % 32, 0u);
    EXPECT_EQ(layout.yBase % 32, 0u);
    EXPECT_EQ(layout.rowOffsetsBase % 32, 0u);
    EXPECT_EQ(layout.coordsBase % 32, 0u);
    EXPECT_EQ(layout.valuesBase % 32, 0u);
    EXPECT_LE(layout.xEnd, layout.yBase);
    EXPECT_LT(layout.yBase, layout.rowOffsetsBase);
    EXPECT_LT(layout.rowOffsetsBase, layout.coordsBase);
    EXPECT_LT(layout.coordsBase, layout.valuesBase);
}

TEST(LayoutTest, IrregularRegionCoversX)
{
    const AddressLayout layout =
        makeLayout(KernelKind::SpmvCsr, 100, 500, 1, 32);
    EXPECT_TRUE(layout.isIrregular(layout.xBase));
    EXPECT_TRUE(layout.isIrregular(layout.xBase + 399));
    EXPECT_FALSE(layout.isIrregular(layout.yBase));
}

TEST(LayoutTest, SpmmScalesXWithDenseCols)
{
    const AddressLayout k4 =
        makeLayout(KernelKind::SpmmCsr, 100, 500, 4, 32);
    const AddressLayout k256 =
        makeLayout(KernelKind::SpmmCsr, 100, 500, 256, 32);
    EXPECT_GT(k256.xEnd - k256.xBase, (k4.xEnd - k4.xBase) * 32);
}

TEST(SpmvCsrStreamTest, AccessCountMatchesAlgorithm)
{
    const Csr m = pathMatrix();
    const auto trace = collect(m, KernelKind::SpmvCsr, {});
    // Per row: 2 rowOffsets + 1 Y; per nnz: coords + values + X.
    EXPECT_EQ(trace.size(),
              static_cast<std::size_t>(3 * m.numRows() +
                                       3 * m.numNonZeros()));
}

TEST(SpmvCsrStreamTest, TouchesEveryXElementReferenced)
{
    const Csr m = gen::erdosRenyi(128, 4.0, 3);
    const AddressLayout layout = makeLayout(
        KernelKind::SpmvCsr, m.numRows(), m.numNonZeros(), 1, 32);
    std::set<std::uint64_t> x_touched;
    StreamOptions options;
    spmvCsrStream(m, layout, options, [&](std::uint64_t a) {
        if (layout.isIrregular(a))
            x_touched.insert(a);
    });
    std::set<std::uint64_t> expected;
    for (Index c : m.colIndices())
        expected.insert(layout.xBase +
                        static_cast<std::uint64_t>(c) * kElemBytes);
    EXPECT_EQ(x_touched, expected);
}

TEST(SpmvCsrStreamTest, WindowPreservesAccessMultiset)
{
    const Csr m = gen::rmatSocial(8, 6.0, 5);
    auto seq = collect(m, KernelKind::SpmvCsr, {1, 4});
    StreamOptions windowed;
    windowed.rowWindow = 32;
    auto win = collect(m, KernelKind::SpmvCsr, windowed);
    ASSERT_EQ(seq.size(), win.size());
    std::sort(seq.begin(), seq.end());
    std::sort(win.begin(), win.end());
    EXPECT_EQ(seq, win);
}

TEST(SpmvCsrStreamTest, WindowInterleavesRows)
{
    // Two rows with two nnz each: windowed replay alternates them.
    Coo coo(4, 4);
    coo.add(0, 1);
    coo.add(0, 2);
    coo.add(1, 2);
    coo.add(1, 3);
    const Csr m = Csr::fromCoo(coo);
    const AddressLayout layout = makeLayout(
        KernelKind::SpmvCsr, m.numRows(), m.numNonZeros(), 1, 32);
    std::vector<std::uint64_t> coords_order;
    StreamOptions options;
    options.rowWindow = 2;
    spmvCsrStream(m, layout, options, [&](std::uint64_t a) {
        if (a >= layout.coordsBase && a < layout.valuesBase)
            coords_order.push_back((a - layout.coordsBase) / 4);
    });
    // Round-robin: nnz 0 (row0), 2 (row1), 1 (row0), 3 (row1).
    EXPECT_EQ(coords_order,
              (std::vector<std::uint64_t>{0, 2, 1, 3}));
}

TEST(SpmvCooStreamTest, FiveAccessesPerNonZero)
{
    const Csr m = pathMatrix();
    const auto trace = collect(m, KernelKind::SpmvCoo, {});
    EXPECT_EQ(trace.size(),
              static_cast<std::size_t>(5 * m.numNonZeros()));
}

TEST(SpmmStreamTest, DenseRowsEmitOneAccessPerLine)
{
    const Csr m = pathMatrix();
    StreamOptions options;
    options.denseCols = 16; // 64 bytes = 2 lines of 32B
    const AddressLayout layout = makeLayout(
        KernelKind::SpmmCsr, m.numRows(), m.numNonZeros(), 16, 32);
    std::size_t b_accesses = 0;
    std::size_t c_accesses = 0;
    spmmCsrStream(m, layout, options, 32, [&](std::uint64_t a) {
        if (layout.isIrregular(a))
            ++b_accesses;
        else if (a >= layout.yBase && a < layout.rowOffsetsBase)
            ++c_accesses;
    });
    EXPECT_EQ(b_accesses,
              static_cast<std::size_t>(m.numNonZeros()) * 2);
    EXPECT_EQ(c_accesses, static_cast<std::size_t>(m.numRows()) * 2);
}

TEST(SpmmStreamTest, HandlesEmptyRows)
{
    Coo coo(4, 4);
    coo.add(1, 2);
    const Csr m = Csr::fromCoo(coo);
    StreamOptions options;
    options.denseCols = 4;
    EXPECT_NO_THROW(collect(m, KernelKind::SpmmCsr, options));
}

TEST(StreamTest, EmptyMatrixEmitsOnlyRowBookkeeping)
{
    const Csr m(2, 2, {0, 0, 0}, {}, {});
    const auto trace = collect(m, KernelKind::SpmvCsr, {});
    // 2 rowOffsets per row, no nnz, no Y store (empty rows still write
    // y[row]? Algorithm 1 writes unconditionally; our stream emits Y
    // only at end of a non-empty row).
    EXPECT_EQ(trace.size(), 4u);
}

} // namespace
} // namespace slo::kernels
