/** @file Tests for the CPU reference kernels. */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "matrix/generators.hpp"

namespace slo::kernels
{
namespace
{

/** [10 0 20; 0 30 0; 40 50 0] */
Csr
sample3x3()
{
    return Csr(3, 3, {0, 2, 3, 5}, {0, 2, 1, 0, 1},
               {10.f, 20.f, 30.f, 40.f, 50.f});
}

/** Dense reference SpMV. */
std::vector<Value>
denseSpmv(const Csr &m, const std::vector<Value> &x)
{
    std::vector<Value> y(static_cast<std::size_t>(m.numRows()), 0.f);
    for (Index r = 0; r < m.numRows(); ++r) {
        auto idx = m.rowIndices(r);
        auto val = m.rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            y[static_cast<std::size_t>(r)] +=
                val[i] * x[static_cast<std::size_t>(idx[i])];
        }
    }
    return y;
}

TEST(SpmvCsrTest, SmallKnownResult)
{
    const std::vector<Value> x = {1.f, 2.f, 3.f};
    const auto y = spmvCsr(sample3x3(), x);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_FLOAT_EQ(y[0], 10.f * 1 + 20.f * 3);
    EXPECT_FLOAT_EQ(y[1], 30.f * 2);
    EXPECT_FLOAT_EQ(y[2], 40.f * 1 + 50.f * 2);
}

TEST(SpmvCsrTest, SizeValidation)
{
    std::vector<Value> x(2), y(3);
    EXPECT_THROW(spmvCsr(sample3x3(), x, y), std::invalid_argument);
    std::vector<Value> x3(3), y2(2);
    EXPECT_THROW(spmvCsr(sample3x3(), x3, y2), std::invalid_argument);
}

TEST(SpmvCsrTest, MatchesDenseReferenceOnRandomMatrix)
{
    const Csr m = gen::rmatSocial(9, 8.0, 3);
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>((i * 37 % 101)) / 101.f;
    const auto got = spmvCsr(m, x);
    const auto expect = denseSpmv(m, x);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], expect[i], 1e-3f);
}

TEST(SpmvCooTest, MatchesCsr)
{
    const Csr m = gen::erdosRenyi(512, 6.0, 7);
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i % 17) * 0.25f;
    const auto y_csr = spmvCsr(m, x);
    std::vector<Value> y_coo(x.size(), 0.f);
    spmvCoo(m.toCoo(), x, y_coo);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_csr[i], y_coo[i], 1e-3f);
}

TEST(SpmvCooTest, SizeValidation)
{
    const Coo coo(3, 3);
    std::vector<Value> bad(2), good(3);
    EXPECT_THROW(spmvCoo(coo, bad, good), std::invalid_argument);
}

TEST(SpmmCsrTest, EqualsColumnwiseSpmv)
{
    const Csr m = gen::plantedPartition(256, 8, 6.0, 1.0, 9);
    const Index k = 4;
    std::vector<Value> b(static_cast<std::size_t>(m.numCols()) * k);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<Value>((i * 13) % 29) * 0.1f;
    std::vector<Value> c(static_cast<std::size_t>(m.numRows()) * k,
                         0.f);
    spmmCsr(m, b, k, c);
    // Column j of C equals SpMV with column j of B.
    for (Index j = 0; j < k; ++j) {
        std::vector<Value> x(static_cast<std::size_t>(m.numCols()));
        for (Index r = 0; r < m.numCols(); ++r)
            x[static_cast<std::size_t>(r)] =
                b[static_cast<std::size_t>(r) * k +
                  static_cast<std::size_t>(j)];
        const auto y = spmvCsr(m, x);
        for (Index r = 0; r < m.numRows(); ++r) {
            EXPECT_NEAR(c[static_cast<std::size_t>(r) * k +
                          static_cast<std::size_t>(j)],
                        y[static_cast<std::size_t>(r)], 1e-3f);
        }
    }
}

TEST(SpmmCsrTest, SizeValidation)
{
    const Csr m = sample3x3();
    std::vector<Value> b(12), c(12);
    EXPECT_THROW(spmmCsr(m, b, 0, c), std::invalid_argument);
    std::vector<Value> b_bad(11);
    EXPECT_THROW(spmmCsr(m, b_bad, 4, c), std::invalid_argument);
}

TEST(PermuteVectorTest, RoundTrip)
{
    const Permutation p = Permutation::random(64, 3);
    std::vector<Value> x(64);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i);
    const auto forward = permuteVector(x, p);
    const auto back = unpermuteVector(forward, p);
    EXPECT_EQ(back, x);
}

TEST(PermuteVectorTest, PlacesValueAtNewIndex)
{
    const Permutation p({2, 0, 1});
    const std::vector<Value> x = {10.f, 20.f, 30.f};
    const auto moved = permuteVector(x, p);
    EXPECT_EQ(moved, (std::vector<Value>{20.f, 30.f, 10.f}));
}

TEST(SpmvPermutationInvariance, ResultsMatchAfterReordering)
{
    // The end-to-end contract of matrix reordering: reorder matrix and
    // input vector, run the kernel, un-permute the result.
    const Csr m = gen::temporalInteraction(1024, 16, 8.0, 0.02, 40.0, 5);
    const Permutation p = Permutation::random(m.numRows(), 11);
    std::vector<Value> x(static_cast<std::size_t>(m.numRows()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>((i % 11)) * 0.3f + 0.1f;

    const auto y_direct = spmvCsr(m, x);
    const Csr reordered = m.permutedSymmetric(p);
    const auto y_reordered =
        spmvCsr(reordered, permuteVector(x, p));
    const auto y_back = unpermuteVector(y_reordered, p);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_direct[i], y_back[i], 1e-2f);
}

} // namespace
} // namespace slo::kernels
