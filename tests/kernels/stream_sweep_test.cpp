/**
 * @file Parameterized sweep over kernels x generator families: the
 * access-stream generators must emit exactly the access counts the
 * kernel formulas predict, for every input shape.
 */

#include <functional>

#include <gtest/gtest.h>

#include "kernels/access_stream.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"

namespace slo::kernels
{
namespace
{

struct SweepCase
{
    std::string name;
    std::function<Csr()> build;
};

class StreamSweepTest : public ::testing::TestWithParam<SweepCase>
{
  protected:
    static std::size_t
    count(const Csr &m, KernelKind kind, const StreamOptions &options)
    {
        const AddressLayout layout =
            makeLayout(kind, m.numRows(), m.numNonZeros(),
                       options.denseCols, 32);
        std::size_t n = 0;
        auto sink = [&n](std::uint64_t) { ++n; };
        switch (kind) {
          case KernelKind::SpmvCsr:
            spmvCsrStream(m, layout, options, sink);
            break;
          case KernelKind::SpmvCoo:
            spmvCooStream(m.toCoo(), layout, sink);
            break;
          case KernelKind::SpmmCsr:
            spmmCsrStream(m, layout, options, 32, sink);
            break;
          case KernelKind::SpgemmAA:
          case KernelKind::SpgemmAAT: {
            // Re-laid-out with the product size so the C region is
            // real; the access count is layout-independent anyway.
            const Csr b = spgemmOperandB(m, spgemmVariant(kind));
            const SpgemmStats stats = spgemmStreamStats(m, b);
            const AddressLayout sized =
                makeLayout(kind, m.numRows(), m.numNonZeros(),
                           options.denseCols, 32,
                           static_cast<Offset>(stats.nnzC));
            spgemmCsrStream(m, b, sized, sink);
            break;
          }
        }
        return n;
    }
};

TEST_P(StreamSweepTest, SpmvCsrAccessCountFormula)
{
    const Csr m = GetParam().build();
    const Index non_empty = m.numRows() - emptyRowCount(m);
    // 2 rowOffsets per row + (coords, values, X) per nnz + 1 Y per
    // non-empty row.
    const auto expect =
        static_cast<std::size_t>(2 * m.numRows()) +
        static_cast<std::size_t>(3 * m.numNonZeros()) +
        static_cast<std::size_t>(non_empty);
    EXPECT_EQ(count(m, KernelKind::SpmvCsr, {}), expect);
    // The row window changes interleaving, never the count.
    StreamOptions windowed;
    windowed.rowWindow = 17;
    EXPECT_EQ(count(m, KernelKind::SpmvCsr, windowed), expect);
}

TEST_P(StreamSweepTest, SpmvCooAccessCountFormula)
{
    const Csr m = GetParam().build();
    EXPECT_EQ(count(m, KernelKind::SpmvCoo, {}),
              static_cast<std::size_t>(5 * m.numNonZeros()));
}

TEST_P(StreamSweepTest, SpmmAccessCountFormula)
{
    const Csr m = GetParam().build();
    const Index non_empty = m.numRows() - emptyRowCount(m);
    for (Index k : {4, 16, 64}) {
        StreamOptions options;
        options.denseCols = k;
        // Lines per K-element segment (segments are k*4B aligned, so
        // 32B lines divide evenly for k multiples of 8; k=4 gives 1).
        const auto lines = static_cast<std::size_t>(
            std::max<Index>(1, k * 4 / 32));
        const auto expect =
            static_cast<std::size_t>(2 * m.numRows()) +
            static_cast<std::size_t>(2 * m.numNonZeros()) +
            static_cast<std::size_t>(m.numNonZeros()) * lines +
            static_cast<std::size_t>(non_empty) * lines;
        EXPECT_EQ(count(m, KernelKind::SpmmCsr, options), expect)
            << "k=" << k;
    }
}

TEST_P(StreamSweepTest, SpgemmAccessCountFormula)
{
    const Csr m = GetParam().build();
    // 3 per row (bounds pair + C descriptor) + 4 per A non-zero
    // (coord, value, B bounds pair) + 2 per merged element + 2 per C
    // non-zero.
    for (const KernelKind kind :
         {KernelKind::SpgemmAA, KernelKind::SpgemmAAT}) {
        const Csr b = spgemmOperandB(m, spgemmVariant(kind));
        const SpgemmStats stats = spgemmStreamStats(m, b);
        const auto expect =
            static_cast<std::size_t>(3 * m.numRows()) +
            static_cast<std::size_t>(4 * m.numNonZeros()) +
            static_cast<std::size_t>(2 * stats.flops) +
            static_cast<std::size_t>(2 * stats.nnzC);
        EXPECT_EQ(count(m, kind, {}), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, StreamSweepTest,
    ::testing::Values(
        SweepCase{"erdos",
                  [] { return gen::erdosRenyi(512, 6.0, 3); }},
        SweepCase{"rmat", [] { return gen::rmatSocial(9, 7.0, 5); }},
        SweepCase{"grid", [] { return gen::grid2d(20, 25, 0.05, 7); }},
        SweepCase{"star",
                  [] { return gen::hubStar(400, 1, 0.8, 0.3, 9); }},
        SweepCase{"emptyRows",
                  [] {
                      Coo coo(300, 300);
                      coo.addSymmetric(0, 299);
                      coo.addSymmetric(5, 7);
                      return Csr::fromCoo(coo);
                  }}),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace slo::kernels
