/** @file Tests for the cache-blocked SpMV extension. */

#include <gtest/gtest.h>

#include "gpu/simulate_tiled.hpp"
#include "kernels/kernels.hpp"
#include "kernels/tiled_spmv.hpp"
#include "matrix/generators.hpp"

namespace slo::kernels
{
namespace
{

TEST(TiledCsrTest, PreservesNonZeros)
{
    const Csr m = gen::rmatSocial(10, 8.0, 3);
    const TiledCsr tiled(m, 100);
    EXPECT_EQ(tiled.numNonZeros(), m.numNonZeros());
    EXPECT_EQ(tiled.numTiles(), (m.numCols() + 99) / 100);
}

TEST(TiledCsrTest, SingleTileEqualsOriginal)
{
    const Csr m = gen::erdosRenyi(256, 5.0, 7);
    const TiledCsr tiled(m, m.numCols());
    EXPECT_EQ(tiled.numTiles(), 1);
    EXPECT_EQ(tiled.tile(0).colIndices(), m.colIndices());
}

TEST(TiledCsrTest, SpmvMatchesUntiled)
{
    const Csr m = gen::temporalInteraction(2048, 32, 8.0, 0.02, 40.0,
                                           9);
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i % 23) * 0.125f;
    const auto expect = spmvCsr(m, x);
    for (Index width : {64, 500, 2048}) {
        const TiledCsr tiled(m, width);
        std::vector<Value> y(x.size(), 0.0f);
        tiled.spmv(x, y);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], expect[i], 1e-3f) << "width " << width;
    }
}

TEST(TiledCsrTest, RejectsBadTileWidth)
{
    const Csr m = gen::erdosRenyi(64, 4.0, 1);
    EXPECT_THROW(TiledCsr(m, 0), std::invalid_argument);
}

TEST(TiledSimulateTest, TilingBoundsRandomOrderTraffic)
{
    // A shuffled community graph whose X footprint is 4x the L2:
    // untiled RANDOM thrashes; tiling bounds the window.
    const Csr m =
        gen::plantedPartition(65536, 128, 10.0, 1.0, 3)
            .permutedSymmetric(Permutation::random(65536, 5));
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const double untiled =
        gpu::simulateKernel(m, spec).normalizedTraffic;
    const auto tile_cols = static_cast<Index>(
        spec.l2.capacityBytes / (2 * kElemBytes));
    const double tiled =
        gpu::simulateTiledSpmv(kernels::TiledCsr(m, tile_cols), spec)
            .normalizedTraffic;
    EXPECT_LT(tiled, untiled);
}

TEST(TiledSimulateTest, TilingCostsStreamOverheadOnGoodOrderings)
{
    // On an already-local matrix, tiling's extra bookkeeping makes
    // traffic worse, not better.
    const Csr m = gen::plantedPartition(65536, 128, 10.0, 1.0, 3);
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const double untiled =
        gpu::simulateKernel(m, spec).normalizedTraffic;
    const double tiled =
        gpu::simulateTiledSpmv(kernels::TiledCsr(m, 2048), spec)
            .normalizedTraffic;
    EXPECT_GT(tiled, untiled);
}

} // namespace
} // namespace slo::kernels
