/**
 * @file
 * Standalone probe for scripts/check_smoke.py: deliberately corrupts a
 * permutation, lets the contract layer trip, and prints the diagnostic.
 * The smoke test sets SLO_CHECK_REPORT and schema-checks the JSON
 * report this run leaves behind. Exits 0 iff the violation fired with
 * a file:line diagnostic.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "matrix/types.hpp"

int
main()
{
    using namespace slo;
    check::setLevel(check::Level::Full);

    std::vector<Index> new_ids(100);
    for (Index i = 0; i < 100; ++i)
        new_ids[static_cast<std::size_t>(i)] = i;
    new_ids[41] = 7; // corrupt: id 7 now appears twice, 41 never

    try {
        check::checkPermutation(new_ids, 100, "check_probe");
    } catch (const check::ContractViolation &violation) {
        std::printf("tripped: %s\n", violation.what());
        const bool has_location =
            !violation.file().empty() && violation.line() > 0;
        std::printf("location: %s:%d\n", violation.file().c_str(),
                    violation.line());
        return has_location ? 0 : 1;
    }
    std::fprintf(stderr, "corrupt permutation was NOT caught\n");
    return 1;
}
