/**
 * @file
 * Negative tests for the contract-checking layer: corrupt permutations,
 * incoherent CSR arrays, truncated files, overflowing casts — each must
 * trip SLO_CHECK with a file:line diagnostic rather than slip through.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "check/check.hpp"
#include "check/checked_cast.hpp"
#include "check/validators.hpp"
#include "matrix/binary_io.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/permutation.hpp"

namespace slo
{
namespace
{

/** Pin the check level for a test, restoring the previous one after. */
class CheckTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous_ = check::level(); }
    void TearDown() override { check::setLevel(previous_); }

  private:
    check::Level previous_ = check::Level::Cheap;
};

TEST_F(CheckTest, ParsesLevelNames)
{
    using check::Level;
    EXPECT_EQ(check::parseLevel("off", Level::Full), Level::Off);
    EXPECT_EQ(check::parseLevel("cheap", Level::Full), Level::Cheap);
    EXPECT_EQ(check::parseLevel("full", Level::Off), Level::Full);
    EXPECT_EQ(check::parseLevel("2", Level::Off), Level::Full);
    EXPECT_EQ(check::parseLevel("bogus", Level::Cheap), Level::Cheap);
    EXPECT_STREQ(check::levelName(Level::Full), "full");
}

TEST_F(CheckTest, ViolationCarriesFileAndLine)
{
    try {
        SLO_CHECK(1 == 2, "test", "deliberate failure, n=" << 42);
        FAIL() << "SLO_CHECK did not throw";
    } catch (const check::ContractViolation &violation) {
        EXPECT_NE(violation.file().find("check_test.cpp"),
                  std::string::npos);
        EXPECT_GT(violation.line(), 0);
        const std::string what = violation.what();
        EXPECT_NE(what.find("contract violation [test]"),
                  std::string::npos);
        EXPECT_NE(what.find("deliberate failure, n=42"),
                  std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
    }
}

TEST_F(CheckTest, ContextRendersOrderedJson)
{
    check::Context ctx;
    ctx.add("n", Index{7}).add("where", std::string("unit"));
    EXPECT_EQ(ctx.toJson(), R"({"n":7,"where":"unit"})");
}

TEST_F(CheckTest, ViolationWritesSchemaReport)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "slo-check-test-report.json";
    std::filesystem::remove(path);
    ::setenv("SLO_CHECK_REPORT", path.c_str(), 1);
    check::Context ctx;
    ctx.add("n", Index{3});
    EXPECT_THROW(
        check::fail("f.cpp", 12, "expr", "test", "boom", ctx),
        check::ContractViolation);
    ::unsetenv("SLO_CHECK_REPORT");

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no report at " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string report = buffer.str();
    EXPECT_NE(report.find("\"slo.check-violation/1\""),
              std::string::npos);
    EXPECT_NE(report.find("\"component\": \"test\""), std::string::npos);
    EXPECT_NE(report.find("\"line\": 12"), std::string::npos);
    std::filesystem::remove(path);
}

TEST_F(CheckTest, CheckedCastPassesAndThrows)
{
    EXPECT_EQ(checkedCast<Index>(std::int64_t{123}), 123);
    EXPECT_EQ(checkedCast<std::size_t>(Offset{5}), 5u);
    EXPECT_THROW(checkedCast<Index>(std::int64_t{1} << 40),
                 check::ContractViolation);
    EXPECT_THROW(checkedCast<Index>(std::int64_t{-1} << 40),
                 check::ContractViolation);
    EXPECT_THROW(checkedCast<std::uint32_t>(-1),
                 check::ContractViolation);
}

TEST_F(CheckTest, CorruptPermutationTrips)
{
    check::setLevel(check::Level::Full);
    // Duplicate id 1, id 2 missing: not a bijection.
    const std::vector<Index> corrupt{0, 1, 1, 3};
    try {
        const Permutation perm{corrupt};
        FAIL() << "corrupt permutation accepted";
    } catch (const check::ContractViolation &violation) {
        EXPECT_NE(violation.file().find("validators.cpp"),
                  std::string::npos);
        EXPECT_GT(violation.line(), 0);
    }
    EXPECT_THROW(check::checkPermutation(corrupt, 4, "unit"),
                 check::ContractViolation);
    EXPECT_THROW(
        check::checkPermutation(std::vector<Index>{0, 9}, 2, "unit"),
        check::ContractViolation); // out of range
    EXPECT_THROW(
        check::checkPermutation(std::vector<Index>{0, 1}, 3, "unit"),
        check::ContractViolation); // size mismatch
}

TEST_F(CheckTest, OffLevelSkipsValidators)
{
    check::setLevel(check::Level::Off);
    const std::vector<Index> corrupt{0, 0, 7};
    EXPECT_NO_THROW(check::checkPermutation(corrupt, 3, "unit"));
}

TEST_F(CheckTest, CsrRejectsNonMonotoneRowPtr)
{
    // row_offsets must be monotone; {0, 2, 1, 3} dips at row 1.
    EXPECT_THROW(Csr(3, 3, {0, 2, 1, 3}, {0, 1, 2},
                     {1.0F, 1.0F, 1.0F}),
                 std::invalid_argument);
    EXPECT_THROW(Csr(3, 3, {1, 2, 3, 3}, {0, 1, 2},
                     {1.0F, 1.0F, 1.0F}),
                 std::invalid_argument); // does not start at 0
}

TEST_F(CheckTest, CsrRejectsOutOfRangeColumns)
{
    EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 5}, {1.0F, 1.0F}),
                 std::invalid_argument);
    EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, -1}, {1.0F, 1.0F}),
                 std::invalid_argument);
}

TEST_F(CheckTest, FullLevelEnforcesSortedRows)
{
    check::setLevel(check::Level::Full);
    const std::vector<Offset> offsets{0, 2};
    const std::vector<Index> unsorted{1, 0};
    EXPECT_NO_THROW(check::checkCsr(1, 2, offsets, unsorted, 2, "unit"));
    EXPECT_THROW(check::checkCsr(1, 2, offsets, unsorted, 2, "unit",
                                 /*require_sorted_rows=*/true),
                 check::ContractViolation);
}

TEST_F(CheckTest, ClusteringDensityRequiresEveryLabel)
{
    check::setLevel(check::Level::Full);
    const std::vector<Index> labels{0, 0, 2}; // label 1 never used
    EXPECT_NO_THROW(check::checkClustering(labels, 3, "unit"));
    EXPECT_THROW(check::checkClustering(labels, 3, "unit",
                                        /*require_dense=*/true),
                 check::ContractViolation);
    EXPECT_THROW(check::checkClustering(labels, 2, "unit"),
                 check::ContractViolation); // label out of range
}

TEST_F(CheckTest, DendrogramRejectsCyclesAndSelfParents)
{
    EXPECT_THROW(
        check::checkDendrogram(std::vector<Index>{0, -1}, "unit"),
        check::ContractViolation); // self-parent
    EXPECT_THROW(
        check::checkDendrogram(std::vector<Index>{5, -1}, "unit"),
        check::ContractViolation); // parent out of range
    check::setLevel(check::Level::Full);
    EXPECT_THROW(
        check::checkDendrogram(std::vector<Index>{1, 2, 0}, "unit"),
        check::ContractViolation); // 0 -> 1 -> 2 -> 0 cycle
    EXPECT_NO_THROW(
        check::checkDendrogram(std::vector<Index>{2, 2, -1}, "unit"));
}

TEST_F(CheckTest, TruncatedBinaryCsrThrows)
{
    const Csr matrix = gen::erdosRenyi(32, 0.1, 7);
    std::ostringstream out(std::ios::binary);
    io::writeCsrBinary(out, matrix);
    const std::string bytes = out.str();

    // Chop the payload: the declared array sizes now exceed the stream.
    std::istringstream truncated(bytes.substr(0, bytes.size() / 2),
                                 std::ios::binary);
    EXPECT_THROW(io::readCsrBinary(truncated), std::invalid_argument);

    // A bit-flipped declared array size must not cause a giant
    // allocation: the reader cross-checks it against stream length.
    // Byte 20 is inside the u64 row_offsets length that follows the
    // 16-byte header (magic, version, rows, cols).
    std::string corrupt = bytes;
    corrupt[20] = '\x7f';
    std::istringstream poisoned(corrupt, std::ios::binary);
    EXPECT_THROW(io::readCsrBinary(poisoned), std::invalid_argument);
}

TEST_F(CheckTest, TruncatedMatrixMarketThrows)
{
    std::istringstream truncated(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 10.0\n"); // 3 entries declared, 1 present
    EXPECT_THROW(io::readMatrixMarket(truncated),
                 std::invalid_argument);
}

TEST_F(CheckTest, CacheInvariantsHoldUnderFullChecking)
{
    check::setLevel(check::Level::Full);
    cache::CacheConfig config;
    config.capacityBytes = 4 * 1024;
    config.lineBytes = 32;
    config.ways = 4;
    cache::CacheSim sim(config);
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 16)
        sim.access(addr);
    sim.checkInvariants();
    EXPECT_NO_THROW(sim.finish());
}

} // namespace
} // namespace slo
