/**
 * @file
 * Unit tests for core::ArtifactStore: LRU eviction order under size
 * pressure, admission control, and thread-level single-flight —
 * including with the disk cache disabled, where the in-process flight
 * machinery is the only build-once guarantee.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/artifact_store.hpp"
#include "par/par.hpp"

namespace slo::core
{
namespace
{

class ArtifactStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-store-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
        ::unsetenv("SLO_NO_CACHE");
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
        ::unsetenv("SLO_NO_CACHE");
    }

    std::filesystem::path dir_;
};

ArtifactStore::Payload
payloadOf(std::size_t n, Index fill)
{
    return std::make_shared<const std::vector<Index>>(
        std::vector<Index>(n, fill));
}

TEST_F(ArtifactStoreTest, EvictsInLruOrderUnderSizePressure)
{
    // One shard so LRU order is global; each 100-element payload
    // costs 100*sizeof(Index)+64 bytes, so the budget fits 3 of them
    // but not 4.
    const std::size_t entry_bytes = 100 * sizeof(Index) + 64;
    ArtifactStore::Options options;
    options.maxBytes = 3 * entry_bytes;
    options.shards = 1;
    options.admitDivisor = 1;
    ArtifactStore store(options);

    ASSERT_TRUE(store.put("a", payloadOf(100, 1)));
    ASSERT_TRUE(store.put("b", payloadOf(100, 2)));
    ASSERT_TRUE(store.put("c", payloadOf(100, 3)));
    EXPECT_EQ(store.entryCount(), 3u);

    // Touch "a": it becomes most-recent, leaving "b" the cold end.
    EXPECT_NE(store.get("a"), nullptr);
    ASSERT_TRUE(store.put("d", payloadOf(100, 4)));

    EXPECT_EQ(store.entryCount(), 3u);
    EXPECT_EQ(store.get("b"), nullptr) << "LRU victim must be b";
    EXPECT_NE(store.get("a"), nullptr);
    EXPECT_NE(store.get("c"), nullptr);
    EXPECT_NE(store.get("d"), nullptr);

    // A held payload survives eviction of its entry.
    const ArtifactStore::Payload held = store.get("c");
    ASSERT_NE(held, nullptr);
    ASSERT_TRUE(store.put("e", payloadOf(100, 5)));
    ASSERT_TRUE(store.put("f", payloadOf(100, 6)));
    ASSERT_TRUE(store.put("g", payloadOf(100, 7)));
    EXPECT_EQ(store.get("c"), nullptr);
    EXPECT_EQ(held->size(), 100u);
    EXPECT_EQ((*held)[0], Index{3});
}

TEST_F(ArtifactStoreTest, AdmissionControlRejectsOversizedPayloads)
{
    ArtifactStore::Options options;
    options.maxBytes = 1 << 20;
    options.shards = 1;
    options.admitDivisor = 8; // admit at most 128 KiB per payload
    ArtifactStore store(options);

    const std::size_t too_big =
        (options.maxBytes / options.admitDivisor) / sizeof(Index) + 64;
    EXPECT_FALSE(store.put("whale", payloadOf(too_big, 1)));
    EXPECT_EQ(store.entryCount(), 0u);
    EXPECT_EQ(store.byteCount(), 0u);

    // getOrBuild still serves the oversized payload, just uncached.
    const ArtifactStore::Payload served = store.getOrBuild(
        "whale", [&] { return std::vector<Index>(too_big, Index{9}); });
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(served->size(), too_big);
    EXPECT_EQ(store.entryCount(), 0u);

    // A small payload passes.
    EXPECT_TRUE(store.put("minnow", payloadOf(16, 2)));
    EXPECT_EQ(store.entryCount(), 1u);
}

TEST_F(ArtifactStoreTest, ConcurrentThreadsBuildOnce)
{
    ArtifactStore store;
    std::atomic<int> builds{0};
    par::ThreadPool pool(4);
    std::vector<ArtifactStore::Payload> results(8);
    par::parallelFor(
        std::size_t{0}, results.size(),
        [&](std::size_t i) {
            results[i] = store.getOrBuild("store-thread-key", [&] {
                builds.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                std::vector<Index> v(512);
                std::iota(v.begin(), v.end(), Index{0});
                return v;
            });
        },
        par::ForOptions{1, &pool});
    EXPECT_EQ(builds.load(), 1);
    for (const ArtifactStore::Payload &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->size(), 512u);
    }
}

TEST_F(ArtifactStoreTest, ConcurrentThreadsBuildOnceWithoutDiskCache)
{
    // SLO_NO_CACHE turns CacheKeyLock into a no-op, so only the
    // in-process flight registration prevents duplicate builds.
    ::setenv("SLO_NO_CACHE", "1", 1);
    ArtifactStore store;
    std::atomic<int> builds{0};
    par::ThreadPool pool(4);
    std::vector<ArtifactStore::Payload> results(8);
    par::parallelFor(
        std::size_t{0}, results.size(),
        [&](std::size_t i) {
            results[i] = store.getOrBuild("store-nocache-key", [&] {
                builds.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                std::vector<Index> v(256);
                std::iota(v.begin(), v.end(), Index{0});
                return v;
            });
        },
        par::ForOptions{1, &pool});
    EXPECT_EQ(builds.load(), 1);
    for (const ArtifactStore::Payload &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->size(), 256u);
    }
}

TEST_F(ArtifactStoreTest, BuilderExceptionPropagatesToEveryWaiter)
{
    ::setenv("SLO_NO_CACHE", "1", 1);
    ArtifactStore store;
    EXPECT_THROW(store.getOrBuild(
                     "throwing-key",
                     []() -> std::vector<Index> {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // A failed flight leaves no entry behind; a retry can succeed.
    EXPECT_EQ(store.get("throwing-key"), nullptr);
    const ArtifactStore::Payload retry = store.getOrBuild(
        "throwing-key", [] { return std::vector<Index>(4, Index{1}); });
    ASSERT_NE(retry, nullptr);
    EXPECT_EQ(retry->size(), 4u);
}

TEST_F(ArtifactStoreTest, GetOrBuildReadsThroughTheDiskCache)
{
    // A second store instance (fresh memory) must load from disk, not
    // rebuild — the cross-process path minus the process boundary.
    int builds = 0;
    const auto build = [&builds] {
        ++builds;
        std::vector<Index> v(64);
        std::iota(v.begin(), v.end(), Index{0});
        return v;
    };
    {
        ArtifactStore first;
        first.getOrBuild("disk-key", build);
    }
    EXPECT_EQ(builds, 1);
    ArtifactStore second;
    const ArtifactStore::Payload loaded =
        second.getOrBuild("disk-key", build);
    EXPECT_EQ(builds, 1) << "second store must read through disk";
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->size(), 64u);
}

} // namespace
} // namespace slo::core
