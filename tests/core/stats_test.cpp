/** @file Tests for summary statistics. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/stats.hpp"

namespace slo::core
{
namespace
{

TEST(StatsTest, MeanBasics)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, GeomeanBasics)
{
    const std::vector<double> v = {1.0, 4.0};
    EXPECT_NEAR(geomean(v), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean(std::vector<double>{1.0, 0.0}),
                 std::invalid_argument);
}

TEST(StatsTest, MinMax)
{
    const std::vector<double> v = {3.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 3.0);
}

TEST(StatsTest, PearsonPerfectCorrelation)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    const std::vector<double> neg = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonUncorrelated)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {1, -1, 1, -1};
    EXPECT_LT(std::abs(pearson(x, y)), 0.5);
}

TEST(StatsTest, PearsonZeroVariance)
{
    const std::vector<double> x = {1, 1, 1};
    const std::vector<double> y = {1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(StatsTest, PearsonSizeMismatch)
{
    EXPECT_THROW(pearson(std::vector<double>{1.0},
                         std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(StatsTest, SpearmanMonotoneNonlinearIsOne)
{
    // Monotone but wildly nonlinear: Spearman 1, Pearson < 1.
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {1, 10, 100, 1000, 10000};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 0.95);
}

TEST(StatsTest, SpearmanHandlesTies)
{
    const std::vector<double> x = {1, 2, 2, 3};
    const std::vector<double> y = {1, 2, 2, 3};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(StatsTest, SpearmanNegative)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {9, 7, 5, 1};
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(StatsTest, SpearmanSizeMismatch)
{
    EXPECT_THROW(spearman(std::vector<double>{1.0},
                          std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(StatsTest, PercentileValidation)
{
    EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

} // namespace
} // namespace slo::core
