/** @file Tests for the corpus and the Sec. III curation process. */

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/dataset.hpp"

namespace slo::core
{
namespace
{

TEST(DatasetTest, PoolHasThreeRepositories)
{
    std::set<std::string> repositories;
    for (const DatasetEntry &entry : candidatePool())
        repositories.insert(entry.repository);
    EXPECT_EQ(repositories,
              (std::set<std::string>{"konect", "suitesparse", "wdc"}));
}

TEST(DatasetTest, CorpusHasAboutFiftyMatrices)
{
    const auto corpus = paperCorpus(Scale::Small);
    EXPECT_GE(corpus.size(), 45u);
    EXPECT_LE(corpus.size(), 55u);
}

TEST(DatasetTest, CorpusSplitMatchesPaperRepartition)
{
    // Paper: 41 SuiteSparse + 7 Konect + 2 WDC.
    std::unordered_map<std::string, int> counts;
    for (const DatasetEntry &entry : paperCorpus(Scale::Small))
        ++counts[entry.repository];
    EXPECT_NEAR(counts["suitesparse"], 41, 2);
    EXPECT_EQ(counts["konect"], 7);
    EXPECT_EQ(counts["wdc"], 2);
}

TEST(DatasetTest, CurationEnforcesMinRows)
{
    const CurationCriteria criteria = paperCriteria(Scale::Small);
    for (const DatasetEntry &entry : paperCorpus(Scale::Small))
        EXPECT_GE(entry.rowsAt(Scale::Small), criteria.minRows);
}

TEST(DatasetTest, CurationEnforcesMaxNnz)
{
    const CurationCriteria criteria = paperCriteria(Scale::Small);
    for (const DatasetEntry &entry : paperCorpus(Scale::Small))
        EXPECT_LE(entry.nnzEstimateAt(Scale::Small), criteria.maxNnz);
}

TEST(DatasetTest, DesignatedExclusionsAreExcluded)
{
    std::set<std::string> names;
    for (const DatasetEntry &entry : paperCorpus(Scale::Small))
        names.insert(entry.name);
    EXPECT_EQ(names.count("uk-union-like"), 0u);    // too dense
    EXPECT_EQ(names.count("small-web-like"), 0u);   // too small
    EXPECT_EQ(names.count("konect-small-like"), 0u);
}

TEST(DatasetTest, LargestPerGroupKeepsOnlyOne)
{
    std::set<std::string> names;
    for (const DatasetEntry &entry : paperCorpus(Scale::Small))
        names.insert(entry.name);
    // web-sk-like (96k rows) survives; web-it-like (48k, same LAW
    // group) is dropped.
    EXPECT_EQ(names.count("web-sk-like"), 1u);
    EXPECT_EQ(names.count("web-it-like"), 0u);
    EXPECT_EQ(names.count("kmer-v1r-like"), 1u);
    EXPECT_EQ(names.count("kmer-a2a-like"), 0u);
}

TEST(DatasetTest, ExceptionGroupsRunAll)
{
    int snap = 0, dimacs = 0;
    for (const DatasetEntry &entry : paperCorpus(Scale::Small)) {
        if (entry.group == "SNAP")
            ++snap;
        if (entry.group == "DIMACS10")
            ++dimacs;
    }
    EXPECT_EQ(snap, 8);
    EXPECT_EQ(dimacs, 7);
}

TEST(DatasetTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const DatasetEntry &entry : candidatePool())
        EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
}

TEST(DatasetTest, ScalesMultiplyRows)
{
    const DatasetEntry entry = candidatePool().front();
    EXPECT_EQ(entry.rowsAt(Scale::Medium),
              entry.rowsAt(Scale::Small) * 4);
    EXPECT_EQ(entry.rowsAt(Scale::Large),
              entry.rowsAt(Scale::Small) * 16);
}

TEST(DatasetTest, SpecForScaleMatchesSelectionBoundary)
{
    // minRows * 4B == L2 capacity at every scale (the paper's rule).
    for (Scale scale :
         {Scale::Small, Scale::Medium, Scale::Large}) {
        const CurationCriteria criteria = paperCriteria(scale);
        EXPECT_EQ(static_cast<std::uint64_t>(criteria.minRows) * 4,
                  specForScale(scale).l2.capacityBytes);
    }
}

TEST(DatasetTest, BuildProducesDeclaredShape)
{
    // Build two cheap entries and verify metadata is honest.
    for (const DatasetEntry &entry : candidatePool()) {
        if (entry.name != "email-eu-like" &&
            entry.name != "cage12-like") {
            continue;
        }
        const Csr m = entry.build(Scale::Small);
        EXPECT_TRUE(m.isSquare());
        EXPECT_NEAR(static_cast<double>(m.numRows()),
                    static_cast<double>(entry.rowsAt(Scale::Small)),
                    0.05 * entry.rowsAt(Scale::Small))
            << entry.name;
        EXPECT_NEAR(static_cast<double>(m.numNonZeros()),
                    static_cast<double>(
                        entry.nnzEstimateAt(Scale::Small)),
                    0.4 * static_cast<double>(
                              entry.nnzEstimateAt(Scale::Small)))
            << entry.name;
    }
}

TEST(DatasetTest, ScaleEnvParsing)
{
    EXPECT_EQ(scaleFactor(Scale::Small), 1);
    EXPECT_EQ(scaleFactor(Scale::Medium), 4);
    EXPECT_EQ(scaleFactor(Scale::Large), 16);
    EXPECT_EQ(scaleName(Scale::Large), "large");
}

} // namespace
} // namespace slo::core
