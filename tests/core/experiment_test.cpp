/** @file Tests for the experiment runner and artifact cache. */

#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "matrix/generators.hpp"

namespace slo::core
{
namespace
{

/** Point the cache at a fresh directory for the whole test binary. */
class ExperimentTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-exp-test-" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
        setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
        unsetenv("SLO_NO_CACHE");
    }

    void
    TearDown() override
    {
        unsetenv("SLO_CACHE_DIR");
        std::filesystem::remove_all(dir_);
    }

    DatasetEntry
    smallEntry()
    {
        for (const DatasetEntry &entry : candidatePool()) {
            if (entry.name == "email-eu-like")
                return entry;
        }
        throw std::runtime_error("entry not found");
    }

    std::filesystem::path dir_;
};

TEST_F(ExperimentTest, CsrCacheRoundTrips)
{
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        return gen::erdosRenyi(256, 4.0, 1);
    };
    const Csr a = loadOrBuildCsr("test-key", build);
    const Csr b = loadOrBuildCsr("test-key", build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a, b);
}

TEST_F(ExperimentTest, CacheDisabledByEnv)
{
    setenv("SLO_NO_CACHE", "1", 1);
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        return gen::erdosRenyi(64, 4.0, 1);
    };
    (void)loadOrBuildCsr("nocache-key", build);
    (void)loadOrBuildCsr("nocache-key", build);
    EXPECT_EQ(builds, 2);
    unsetenv("SLO_NO_CACHE");
}

TEST_F(ExperimentTest, IndexVectorCacheRoundTrips)
{
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        return std::vector<Index>{3, 1, 2};
    };
    const auto a = loadOrBuildIndexVector("vec-key", build);
    const auto b = loadOrBuildIndexVector("vec-key", build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, (std::vector<Index>{3, 1, 2}));
}

TEST_F(ExperimentTest, CacheKeysDoNotCollide)
{
    EXPECT_NE(cacheFileStem("a"), cacheFileStem("b"));
    EXPECT_NE(cacheFileStem("key/with/slash"),
              cacheFileStem("key_with_slash"));
}

TEST_F(ExperimentTest, OrderingForCachesPermAndTime)
{
    const DatasetEntry entry = smallEntry();
    const Csr original = entry.build(Scale::Small);
    const TimedOrdering first = orderingFor(
        entry, original, Scale::Small, reorder::Technique::Dbg);
    EXPECT_TRUE(Permutation::isPermutation(first.perm.newIds()));
    EXPECT_GE(first.reorderSeconds, 0.0);
    const TimedOrdering second = orderingFor(
        entry, original, Scale::Small, reorder::Technique::Dbg);
    EXPECT_EQ(first.perm, second.perm);
    // Cached time equals the originally measured one.
    EXPECT_DOUBLE_EQ(first.reorderSeconds, second.reorderSeconds);
}

TEST_F(ExperimentTest, RabbitArtifactsAreConsistent)
{
    const DatasetEntry entry = smallEntry();
    const Csr original = entry.build(Scale::Small);
    const RabbitArtifacts first =
        rabbitArtifactsFor(entry, original, Scale::Small);
    EXPECT_EQ(first.clustering.numNodes(), original.numRows());
    EXPECT_GE(first.insularity, 0.0);
    EXPECT_LE(first.insularity, 1.0);
    const RabbitArtifacts second =
        rabbitArtifactsFor(entry, original, Scale::Small);
    EXPECT_EQ(first.perm, second.perm);
    EXPECT_EQ(first.clustering.labels(), second.clustering.labels());
    EXPECT_DOUBLE_EQ(first.insularity, second.insularity);
}

TEST_F(ExperimentTest, SimulateOrderedMatchesManualPipeline)
{
    const DatasetEntry entry = smallEntry();
    const Csr original = entry.build(Scale::Small);
    const Permutation perm =
        Permutation::random(original.numRows(), 3);
    const gpu::GpuSpec spec = specForScale(Scale::Small);
    const gpu::SimReport a = simulateOrdered(original, perm, spec);
    const gpu::SimReport b = gpu::simulateKernel(
        original.permutedSymmetric(perm), spec);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
}

TEST_F(ExperimentTest, LoadCorpusHonoursFilter)
{
    const CorpusFilter limit_one{1, {}};
    const auto corpus = loadCorpus(Scale::Small, limit_one);
    ASSERT_EQ(corpus.size(), 1u);

    CorpusFilter named;
    named.names = {corpus[0].entry.name};
    const auto by_name = loadCorpus(Scale::Small, named);
    ASSERT_EQ(by_name.size(), 1u);
    EXPECT_EQ(by_name[0].entry.name, corpus[0].entry.name);

    CorpusFilter unknown;
    unknown.names = {"no-such-matrix"};
    EXPECT_TRUE(loadCorpus(Scale::Small, unknown).empty());
}

} // namespace
} // namespace slo::core
