/** @file Tests for table/CSV reporting. */

#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace slo::core
{
namespace
{

TEST(ReportTest, TablePrintsAlignedColumns)
{
    Table table({"matrix", "traffic"});
    table.addRow({"web-sk-like", "1.05x"});
    table.addRow({"mawi-like", "4.18x"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("matrix"), std::string::npos);
    EXPECT_NE(text.find("web-sk-like"), std::string::npos);
    EXPECT_NE(text.find("4.18x"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(ReportTest, TableRejectsCellCountMismatch)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
}

TEST(ReportTest, TableRejectsNoColumns)
{
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(ReportTest, CsvEscapesSpecialCharacters)
{
    Table table({"name", "note"});
    table.addRow({"a,b", "say \"hi\""});
    std::ostringstream out;
    table.writeCsv(out);
    EXPECT_EQ(out.str(),
              "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(ReportTest, NumRows)
{
    Table table({"x"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"1"});
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(ReportTest, Formatters)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.5, 0), "2");
    EXPECT_EQ(fmtX(1.544), "1.54x");
    EXPECT_EQ(fmtPct(0.5432), "54.3%");
    EXPECT_EQ(fmtPct(0.5432, 0), "54%");
}

TEST(ReportTest, HeadingFormat)
{
    std::ostringstream out;
    printHeading(out, "Figure 2");
    EXPECT_EQ(out.str(), "\n== Figure 2 ==\n\n");
}

} // namespace
} // namespace slo::core
