#include <thread>

void runDetached(void (*task)()) {
    std::thread worker(task);
    worker.detach();
}
