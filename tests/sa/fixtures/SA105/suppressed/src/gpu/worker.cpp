#include <thread>

void runDetached(void (*task)()) {
    std::thread worker(task); // sa-ok: SA105 fixture: watchdog thread
    worker.detach();
}
