#include <chrono>

long long nowNanos() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
