#include "../matrix/csr.hpp"

void tile() {}
