#include "../matrix/csr.hpp" // sa-ok: SA108 fixture

void tile() {}
