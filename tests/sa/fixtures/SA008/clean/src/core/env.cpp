#include <cstdlib>

bool verboseEnabled() {
    return std::getenv("SLO_FIXTURE_VERBOSE") != nullptr;
}
