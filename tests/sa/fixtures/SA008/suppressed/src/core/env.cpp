#include <cstdlib>

bool verboseEnabled() {
    return std::getenv("SLO_FIXTURE_VERBOSE") != nullptr; // sa-ok: SA008 fixture
}
