#include <vector>

using namespace std; // sa-ok: SA109 fixture

vector<int> empty() { return {}; }
