#include <vector>

std::vector<int> empty() { return {}; }
