#include <vector>

using namespace std;

vector<int> empty() { return {}; }
