#include <sys/resource.h>

long peakRssKb() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage); // sa-ok: SA104 fixture
    return usage.ru_maxrss;
}
