#include <sys/resource.h>

long peakRssKb() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;
}
