#include "gpu/gpu_spec.hpp" // sa-ok: SA001 fixture: deliberate inversion

void emitSpec() {}
