#include "obs/log.hpp"

void emitSpec() {}
