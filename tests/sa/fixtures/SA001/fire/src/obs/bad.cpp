// obs is the bottom layer: including a gpu header from here inverts
// the declared module DAG.
#include "gpu/gpu_spec.hpp"

void emitSpec() {}
