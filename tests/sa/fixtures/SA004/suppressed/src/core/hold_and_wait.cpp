struct TaskGroup {
    void run(void (*task)());
    void wait();
};

struct CacheKeyLock {
    explicit CacheKeyLock(const char *key);
    ~CacheKeyLock();
};

void buildArtifactsFor(const char *key, TaskGroup &group) {
    const CacheKeyLock lock(key);
    group.run(nullptr);
    // Sound only because TaskGroup waiters help strictly with their
    // own group's tasks (the PR 3 review fix).
    // sa-ok: SA004 group-local helping cannot steal foreign work
    group.wait();
}
