// Reconstruction of the PR 3 deadlock: a build thread holds a
// per-key flock (CacheKeyLock) and waits on a TaskGroup. Before the
// group-local helping fix, the waiter could steal an *unrelated*
// coarse task that tried to take the same key's flock from another
// process -> hold-and-wait, circular wait, deadlock.
struct TaskGroup {
    void run(void (*task)());
    void wait();
};

struct CacheKeyLock {
    explicit CacheKeyLock(const char *key);
    ~CacheKeyLock();
};

void buildArtifactsFor(const char *key, TaskGroup &group) {
    const CacheKeyLock lock(key);
    group.run(nullptr);
    group.wait();
}
