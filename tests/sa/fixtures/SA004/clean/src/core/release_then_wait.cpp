struct TaskGroup {
    void run(void (*task)());
    void wait();
};

struct CacheKeyLock {
    explicit CacheKeyLock(const char *key);
    ~CacheKeyLock();
};

void buildArtifactsFor(const char *key, TaskGroup &group) {
    {
        const CacheKeyLock lock(key);
        group.run(nullptr);
    }
    group.wait();
}
