int answer() { return 42; }
