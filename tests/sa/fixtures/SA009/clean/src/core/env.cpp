#include <cstdlib>

bool removedEnabled() {
    return std::getenv("SLO_FIXTURE_REMOVED") != nullptr;
}
