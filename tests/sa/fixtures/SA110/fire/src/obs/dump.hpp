#pragma once
#include <iostream>

inline void dump(int value) { std::cout << value; }
