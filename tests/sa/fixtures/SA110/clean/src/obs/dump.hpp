#pragma once
#include <ostream>

inline void dump(std::ostream &out, int value) { out << value; }
