#pragma once
#include <iostream> // sa-ok: SA110 fixture

inline void dump(int value) { std::cout << value; }
