#include <cassert>

void advance(int &cursor, int limit) {
    ++cursor;
    assert(cursor < limit);
}
