#include <cassert>

void advance(int &cursor, int limit) {
    assert(++cursor < limit); // sa-ok: SA106 fixture
}
