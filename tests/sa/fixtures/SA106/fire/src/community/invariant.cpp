#include <cassert>

void advance(int &cursor, int limit) {
    assert(++cursor < limit);
}
