// sa-ok: SA002 fixture: deliberate cycle
#pragma once
#include "matrix/b.hpp"
