#pragma once
