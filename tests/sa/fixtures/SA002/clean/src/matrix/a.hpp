#pragma once
#include "matrix/b.hpp"
