#pragma once
#include "matrix/a.hpp"
