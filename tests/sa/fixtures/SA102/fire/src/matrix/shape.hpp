#pragma once

struct Shape {
    int num_rows;
};
