#pragma once

struct Shape {
    int num_rows; // sa-ok: SA102 fixture: external ABI struct
};
