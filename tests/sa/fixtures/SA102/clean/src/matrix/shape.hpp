#pragma once
#include <cstdint>

using Index = std::int32_t;

struct Shape {
    Index numRows;
};
