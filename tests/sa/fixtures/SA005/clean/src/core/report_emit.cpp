#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

void emitCounters(std::ostream &out,
                  const std::unordered_map<int, long> &counters) {
    std::vector<std::pair<int, long>> sorted(counters.begin(),
                                             counters.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto &[key, value] : sorted) {
        out << key << "=" << value << "\n";
    }
}
