#include <ostream>
#include <unordered_map>

void emitCounters(std::ostream &out,
                  const std::unordered_map<int, long> &counters) {
    for (const auto &[key, value] : counters) {
        out << key << "=" << value << "\n";
    }
}
