#include <ostream>
#include <unordered_map>

void emitCounters(std::ostream &out,
                  const std::unordered_map<int, long> &counters) {
    // sa-ok: SA005 fixture: single-entry map, order cannot matter
    for (const auto &[key, value] : counters) {
        out << key << "=" << value << "\n";
    }
}
