#include <vector>

namespace par {
template <typename F> void parallelFor(int begin, int end, F &&f);
}

double sumAll(const std::vector<double> &xs) {
    double sum = 0.0;
    par::parallelFor(0, static_cast<int>(xs.size()), [&](int i) {
        sum += xs[static_cast<unsigned>(i)]; // sa-ok: SA006 fixture: SLO_THREADS=1 only
    });
    return sum;
}
