#include <vector>

namespace par {
template <typename T, typename F, typename G>
T parallelReduce(int begin, int end, int grain, T init, F &&fold,
                 G &&combine);
}

double sumAll(const std::vector<double> &xs) {
    return par::parallelReduce(
        0, static_cast<int>(xs.size()), 0, 0.0,
        [&](int begin, int end) {
            double partial = 0.0;
            for (int i = begin; i < end; ++i)
                partial += xs[static_cast<unsigned>(i)];
            return partial;
        },
        [](double a, double b) { return a + b; });
}
