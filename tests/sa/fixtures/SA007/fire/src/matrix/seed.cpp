#include <random>

unsigned freshSeed() {
    std::random_device device;
    return device();
}
