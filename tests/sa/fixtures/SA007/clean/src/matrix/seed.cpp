unsigned freshSeed(unsigned long state) {
    state ^= state << 13;
    state ^= state >> 7;
    return static_cast<unsigned>(state);
}
