#include <random>

unsigned freshSeed() {
    std::random_device device; // sa-ok: SA007 fixture: entropy probe only
    return device();
}
