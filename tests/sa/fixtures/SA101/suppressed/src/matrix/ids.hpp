#pragma once

struct Dims {
    long rows; // sa-ok: SA101 fixture: ABI seam
};
