#pragma once

struct Dims {
    long rows;
};
