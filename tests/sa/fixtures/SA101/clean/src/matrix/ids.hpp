#pragma once
#include <cstdint>

struct Dims {
    std::int64_t rows;
};
