#include <mutex>

std::mutex g_shard_a;
std::mutex g_shard_b;

void mergeAIntoB() {
    const std::lock_guard<std::mutex> hold(g_shard_a);
    const std::lock_guard<std::mutex> then(g_shard_b);
}

void mergeBIntoA() {
    const std::lock_guard<std::mutex> hold(g_shard_b);
    const std::lock_guard<std::mutex> then(g_shard_a);
}
