#pragma once

struct Guard {
    int level;
};
