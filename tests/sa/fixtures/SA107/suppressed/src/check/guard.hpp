// sa-ok: SA107 fixture: generated header
struct Guard {
    int level;
};
