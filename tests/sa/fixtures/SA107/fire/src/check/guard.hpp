struct Guard {
    int level;
};
