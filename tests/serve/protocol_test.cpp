/**
 * @file
 * Wire-protocol tests: framing, incremental frame assembly, schema
 * validation, and digest stability.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace slo::serve
{
namespace
{

TEST(ServeProtocolTest, EncodeFramePrefixesLittleEndianLength)
{
    const std::string frame = encodeFrame("abc");
    ASSERT_EQ(frame.size(), 7u);
    EXPECT_EQ(frame[0], 3);
    EXPECT_EQ(frame[1], 0);
    EXPECT_EQ(frame[2], 0);
    EXPECT_EQ(frame[3], 0);
    EXPECT_EQ(frame.substr(4), "abc");
}

TEST(ServeProtocolTest, SplitterReassemblesAcrossArbitraryChunks)
{
    const std::string wire =
        encodeFrame("first") + encodeFrame("") + encodeFrame("third");
    FrameSplitter splitter;
    std::vector<std::string> got;
    // Feed one byte at a time: worst-case fragmentation.
    for (const char c : wire) {
        splitter.feed(&c, 1);
        while (const auto payload = splitter.next())
            got.push_back(*payload);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], "first");
    EXPECT_EQ(got[1], "");
    EXPECT_EQ(got[2], "third");
    EXPECT_EQ(splitter.bufferedBytes(), 0u);
}

TEST(ServeProtocolTest, SplitterThrowsOnOversizedFrame)
{
    FrameSplitter splitter;
    const char prefix[4] = {'\xff', '\xff', '\xff', '\x7f'};
    splitter.feed(prefix, sizeof(prefix));
    EXPECT_THROW(splitter.next(), std::runtime_error);
}

TEST(ServeProtocolTest, RequestRoundTripsThroughJson)
{
    Request request;
    request.id = 42;
    request.op = "reorder";
    request.matrix = "road-central-like";
    request.technique = "RABBIT";
    request.seed = 7;
    request.deadlineMs = 2500;
    std::string error;
    const auto parsed =
        Request::parse(request.toJson().dump(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->id, 42u);
    EXPECT_EQ(parsed->op, "reorder");
    EXPECT_EQ(parsed->matrix, "road-central-like");
    EXPECT_EQ(parsed->technique, "RABBIT");
    EXPECT_EQ(parsed->seed, 7u);
    EXPECT_EQ(parsed->deadlineMs, 2500u);
}

TEST(ServeProtocolTest, RequestParseRejectsBadInput)
{
    std::string error;
    EXPECT_FALSE(Request::parse("not json", &error).has_value());
    EXPECT_FALSE(
        Request::parse(R"({"schema":"wrong/1","id":1,"op":"ping"})",
                       &error)
            .has_value());
    // Missing op.
    EXPECT_FALSE(
        Request::parse(R"({"schema":"slo.serve-request/1","id":1})",
                       &error)
            .has_value());
    // Unknown op.
    EXPECT_FALSE(
        Request::parse(
            R"({"schema":"slo.serve-request/1","id":1,"op":"fly"})",
            &error)
            .has_value());
    EXPECT_NE(error.find("unknown op"), std::string::npos);
    // reorder without matrix/technique.
    EXPECT_FALSE(
        Request::parse(
            R"({"schema":"slo.serve-request/1","id":1,"op":"reorder"})",
            &error)
            .has_value());
}

TEST(ServeProtocolTest, ResponseRoundTripsThroughJson)
{
    Response response;
    response.id = 9;
    response.status = "ok";
    response.key = "serve/small/x/g1/RABBIT/s1";
    response.rows = 4096;
    response.digest = "00ff00ff00ff00ff";
    std::string error;
    const auto parsed =
        Response::parse(response.serialize(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->id, 9u);
    EXPECT_EQ(parsed->status, "ok");
    EXPECT_EQ(parsed->key, response.key);
    EXPECT_EQ(parsed->rows, 4096u);
    EXPECT_EQ(parsed->digest, response.digest);
}

TEST(ServeProtocolTest, PayloadDigestIsStableAndDiscriminating)
{
    const std::vector<Index> a = {0, 1, 2, 3};
    const std::vector<Index> b = {0, 1, 3, 2};
    EXPECT_EQ(payloadDigest(a).size(), 16u);
    EXPECT_EQ(payloadDigest(a), payloadDigest(a));
    EXPECT_NE(payloadDigest(a), payloadDigest(b));
}

} // namespace
} // namespace slo::serve
