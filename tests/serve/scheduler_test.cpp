/**
 * @file
 * BatchScheduler tests: inline completion on a serial pool,
 * coalescing of duplicate in-flight keys, queue-limit rejection,
 * deadline cancellation, and builder-error propagation.
 */

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/artifact_store.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"
#include "serve/scheduler.hpp"

namespace slo::serve
{
namespace
{

class BatchSchedulerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-sched-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
        ::unsetenv("SLO_NO_CACHE");
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

std::vector<Index>
iotaVec(std::size_t n)
{
    std::vector<Index> v(n);
    std::iota(v.begin(), v.end(), Index{0});
    return v;
}

TEST_F(BatchSchedulerTest, SerialPoolCompletesInline)
{
    core::ArtifactStore store;
    par::ThreadPool pool(1); // serial: submit runs the job inline
    BatchScheduler scheduler(BatchScheduler::Options{}, store, pool);

    BatchScheduler::Result seen;
    bool called = false;
    const bool accepted = scheduler.submit(
        "inline-key", 0, [] { return iotaVec(32); },
        [&](const BatchScheduler::Result &result) {
            seen = result;
            called = true;
        });
    EXPECT_TRUE(accepted);
    // Serial pool: by the time submit returns, the completion ran.
    ASSERT_TRUE(called);
    EXPECT_EQ(seen.outcome, BatchScheduler::Outcome::Ok);
    ASSERT_NE(seen.payload, nullptr);
    EXPECT_EQ(*seen.payload, iotaVec(32));
    EXPECT_EQ(scheduler.inflight(), 0u);
}

TEST_F(BatchSchedulerTest, ExpiredDeadlineCancelsWithoutBuilding)
{
    core::ArtifactStore store;
    par::ThreadPool pool(1);
    BatchScheduler scheduler(BatchScheduler::Options{}, store, pool);

    bool built = false;
    BatchScheduler::Result seen;
    const bool accepted = scheduler.submit(
        "expired-key", /*deadlineNanos=*/1,
        [&] {
            built = true;
            return iotaVec(8);
        },
        [&](const BatchScheduler::Result &result) { seen = result; });
    EXPECT_TRUE(accepted);
    EXPECT_FALSE(built) << "an all-expired job must not build";
    EXPECT_EQ(seen.outcome,
              BatchScheduler::Outcome::DeadlineExceeded);
    EXPECT_EQ(store.get("expired-key"), nullptr);
}

TEST_F(BatchSchedulerTest, BuilderErrorReachesTheCompletion)
{
    core::ArtifactStore store;
    par::ThreadPool pool(1);
    BatchScheduler scheduler(BatchScheduler::Options{}, store, pool);

    BatchScheduler::Result seen;
    scheduler.submit(
        "error-key", 0,
        []() -> std::vector<Index> {
            throw std::runtime_error("boom");
        },
        [&](const BatchScheduler::Result &result) { seen = result; });
    EXPECT_EQ(seen.outcome, BatchScheduler::Outcome::Error);
    EXPECT_NE(seen.error.find("boom"), std::string::npos);
}

TEST_F(BatchSchedulerTest, CoalescesDuplicatesAndRejectsBeyondLimit)
{
    core::ArtifactStore store;
    par::ThreadPool pool(2);
    BatchScheduler::Options options;
    options.queueLimit = 1;
    BatchScheduler scheduler(options, store, pool);

    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<int> builds{0};

    std::atomic<int> completions{0};
    std::atomic<int> oks{0};
    const auto completion =
        [&](const BatchScheduler::Result &result) {
            completions.fetch_add(1);
            if (result.outcome == BatchScheduler::Outcome::Ok)
                oks.fetch_add(1);
        };
    const auto blocked_build = [&] {
        builds.fetch_add(1);
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
        return iotaVec(16);
    };

    // First submit occupies the single queue slot and blocks in the
    // builder on a worker thread.
    ASSERT_TRUE(
        scheduler.submit("busy-key", 0, blocked_build, completion));
    // Wait until the worker is inside the builder.
    while (builds.load() == 0)
        ::usleep(1000);

    // A duplicate key coalesces even at the limit...
    EXPECT_TRUE(
        scheduler.submit("busy-key", 0, blocked_build, completion));
    // ...but a distinct key is rejected: the queue is full.
    EXPECT_FALSE(
        scheduler.submit("other-key", 0, blocked_build, completion));

    {
        const std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    scheduler.drain();

    EXPECT_EQ(builds.load(), 1) << "duplicate submits must coalesce";
    EXPECT_EQ(completions.load(), 2);
    EXPECT_EQ(oks.load(), 2);
    EXPECT_EQ(scheduler.inflight(), 0u);
}

TEST_F(BatchSchedulerTest, LateWaiterPastDeadlineGetsDeadlineExceeded)
{
    core::ArtifactStore store;
    par::ThreadPool pool(2);
    BatchScheduler scheduler(BatchScheduler::Options{}, store, pool);

    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<bool> building{false};

    std::atomic<int> ok_count{0};
    std::atomic<int> expired_count{0};
    const auto completion =
        [&](const BatchScheduler::Result &result) {
            if (result.outcome == BatchScheduler::Outcome::Ok)
                ok_count.fetch_add(1);
            else if (result.outcome ==
                     BatchScheduler::Outcome::DeadlineExceeded)
                expired_count.fetch_add(1);
        };

    ASSERT_TRUE(scheduler.submit(
        "slow-key", 0,
        [&] {
            building.store(true);
            std::unique_lock<std::mutex> lock(gate_mutex);
            gate_cv.wait(lock, [&] { return gate_open; });
            return iotaVec(8);
        },
        completion));
    while (!building.load())
        ::usleep(1000);

    // Joins the in-flight build with an already-expired deadline: the
    // build itself is never cancelled, but this waiter's result is
    // DeadlineExceeded at delivery.
    ASSERT_TRUE(scheduler.submit(
        "slow-key", /*deadlineNanos=*/1, [] { return iotaVec(8); },
        completion));

    {
        const std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    scheduler.drain();

    EXPECT_EQ(ok_count.load(), 1);
    EXPECT_EQ(expired_count.load(), 1);
}

} // namespace
} // namespace slo::serve
