/**
 * @file
 * End-to-end daemon tests: spawn a real `slo_served` (fork/exec, own
 * socket + cache dir) and exercise the protocol against it — ping,
 * malformed input, reorder cold/hot, stats, and graceful shutdown.
 */

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace slo::serve
{
namespace
{

/** A cheap corpus matrix (32k rows, ~3 nnz/row at small scale). */
constexpr const char *kMatrix = "road-central-like";

class ServeDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-serve-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);

        const std::string binary = resolveDaemonBinary();
        ASSERT_FALSE(binary.empty()) << "slo_served not found";
        daemon_ = spawnDaemon(
            binary, (dir_ / "serve.sock").string(),
            {"SLO_CACHE_DIR=" + (dir_ / "cache").string(),
             "SLO_TRACE=0", "REPRO_SCALE=small"});
        ASSERT_TRUE(daemon_.running());
        ASSERT_TRUE(waitForServer(daemon_.socketPath, 30000));
        ASSERT_TRUE(client_.connect(daemon_.socketPath));
    }

    void
    TearDown() override
    {
        client_.close();
        if (daemon_.running())
            stopDaemon(daemon_, 10000);
        std::filesystem::remove_all(dir_);
    }

    Request
    reorder(std::uint64_t id, std::uint64_t seed)
    {
        Request request;
        request.id = id;
        request.op = "reorder";
        request.matrix = kMatrix;
        request.technique = "RABBIT";
        request.seed = seed;
        request.deadlineMs = 120000;
        return request;
    }

    std::filesystem::path dir_;
    DaemonProcess daemon_;
    Client client_;
};

TEST_F(ServeDaemonTest, PingRoundTrips)
{
    Request ping;
    ping.id = 7;
    ping.op = "ping";
    const std::optional<Response> response = client_.call(ping);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->id, 7u);
    EXPECT_EQ(response->status, "ok");
}

TEST_F(ServeDaemonTest, MalformedJsonGetsAnErrorResponse)
{
    ASSERT_TRUE(client_.sendFrame("this is not json"));
    const std::optional<std::string> frame = client_.recvFrame();
    ASSERT_TRUE(frame.has_value());
    const std::optional<Response> response =
        Response::parse(*frame, nullptr);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, "error");
    // The connection survives a bad frame.
    Request ping;
    ping.id = 1;
    ping.op = "ping";
    const std::optional<Response> after = client_.call(ping);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->status, "ok");
}

TEST_F(ServeDaemonTest, UnknownMatrixAndTechniqueAreErrors)
{
    Request bad_matrix = reorder(1, 1);
    bad_matrix.matrix = "no-such-matrix";
    std::optional<Response> response = client_.call(bad_matrix);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, "error");
    EXPECT_NE(response->error.find("unknown matrix"),
              std::string::npos);

    Request bad_technique = reorder(2, 1);
    bad_technique.technique = "NO-SUCH-TECHNIQUE";
    response = client_.call(bad_technique);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, "error");
    EXPECT_NE(response->error.find("unknown technique"),
              std::string::npos);
}

TEST_F(ServeDaemonTest, ReorderBuildsThenServesFromMemory)
{
    const std::optional<Response> cold =
        client_.call(reorder(1, 1));
    ASSERT_TRUE(cold.has_value());
    ASSERT_EQ(cold->status, "ok") << cold->error;
    EXPECT_GT(cold->rows, 0u);
    EXPECT_EQ(cold->digest.size(), 16u);
    EXPECT_NE(cold->key.find(kMatrix), std::string::npos);

    const std::optional<Response> hot = client_.call(reorder(2, 1));
    ASSERT_TRUE(hot.has_value());
    ASSERT_EQ(hot->status, "ok");
    EXPECT_EQ(hot->rows, cold->rows);
    EXPECT_EQ(hot->digest, cold->digest);
    EXPECT_EQ(hot->key, cold->key);

    const std::optional<obs::Json> stats = client_.stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->at("store").at("builds").asUint(), 1u);
    EXPECT_GE(stats->at("counters").at("hits").asUint(), 1u);
}

TEST_F(ServeDaemonTest, StatsDocumentIsWellFormed)
{
    const std::optional<obs::Json> stats = client_.stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->at("schema").asString(), kStatsSchema);
    EXPECT_TRUE(stats->contains("counters"));
    EXPECT_TRUE(stats->contains("scheduler"));
    EXPECT_TRUE(stats->contains("store"));
    EXPECT_TRUE(stats->contains("latency"));
    EXPECT_EQ(
        stats->at("scheduler").at("queue_limit").asUint(), 64u);
    EXPECT_EQ(stats->at("counters").at("dropped_responses").asUint(),
              0u);
}

TEST_F(ServeDaemonTest, ShutdownExitsCleanly)
{
    const int exit_code = stopDaemon(daemon_, 15000);
    EXPECT_EQ(exit_code, 0);
    EXPECT_FALSE(daemon_.running());
}

} // namespace
} // namespace slo::serve
