/** @file Tests for the LRU set-associative cache simulator. */

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "matrix/rng.hpp"

namespace slo::cache
{
namespace
{

/** Tiny cache: 4 lines of 32B, 2 ways -> 2 sets. */
CacheConfig
tinyConfig()
{
    return CacheConfig{4 * 32, 32, 2};
}

TEST(CacheConfigTest, GeometryDerivation)
{
    const CacheConfig config = tinyConfig();
    EXPECT_EQ(config.numLines(), 4u);
    EXPECT_EQ(config.numSets(), 2u);
    EXPECT_NO_THROW(config.validate());
}

TEST(CacheConfigTest, ValidationCatchesBadGeometry)
{
    EXPECT_THROW((CacheConfig{128, 24, 2}.validate()),
                 std::invalid_argument); // line not power of two
    EXPECT_THROW((CacheConfig{32, 32, 2}.validate()),
                 std::invalid_argument); // capacity < one set
    EXPECT_NO_THROW((CacheConfig{96 * 32, 32, 2}.validate()));
    // non-power-of-two set counts are legal (the real A6000 L2 has
    // 12288 sets)
    EXPECT_THROW((CacheConfig{128, 32, 0}.validate()),
                 std::invalid_argument); // zero ways
}

TEST(CacheSimTest, FirstAccessMissesSecondHits)
{
    CacheSim sim(tinyConfig());
    EXPECT_FALSE(sim.access(0));
    EXPECT_TRUE(sim.access(0));
    EXPECT_TRUE(sim.access(31)); // same line
    EXPECT_FALSE(sim.access(32)); // next line
    sim.finish();
    EXPECT_EQ(sim.stats().accesses, 4u);
    EXPECT_EQ(sim.stats().hits, 2u);
    EXPECT_EQ(sim.stats().misses, 2u);
}

TEST(CacheSimTest, LruEvictsLeastRecentlyUsed)
{
    // One set in use: lines 0, 2, 4 map to set 0 (line index even).
    CacheSim sim(tinyConfig());
    sim.access(0 * 32);   // miss, set 0
    sim.access(2 * 32);   // miss, set 0 (full now: {0,2})
    sim.access(0 * 32);   // hit, 0 becomes MRU
    sim.access(4 * 32);   // miss, evicts line 2 (LRU)
    EXPECT_TRUE(sim.access(0 * 32));  // still resident
    EXPECT_FALSE(sim.access(2 * 32)); // was evicted
    sim.finish();
    EXPECT_EQ(sim.stats().evictions, 2u);
}

TEST(CacheSimTest, SetsAreIndependent)
{
    CacheSim sim(tinyConfig());
    // Lines 0,2 -> set 0; lines 1,3 -> set 1.
    sim.access(0 * 32);
    sim.access(1 * 32);
    sim.access(2 * 32);
    sim.access(3 * 32);
    // All four resident (2 per set).
    EXPECT_TRUE(sim.access(0 * 32));
    EXPECT_TRUE(sim.access(1 * 32));
    EXPECT_TRUE(sim.access(2 * 32));
    EXPECT_TRUE(sim.access(3 * 32));
}

TEST(CacheSimTest, TrafficIsMissesTimesLineBytes)
{
    CacheSim sim(tinyConfig());
    sim.access(0);
    sim.access(64);
    sim.access(0);
    sim.finish();
    EXPECT_EQ(sim.stats().trafficBytes(32), 64u);
}

TEST(CacheSimTest, DeadLineAccounting)
{
    CacheSim sim(tinyConfig());
    sim.access(0 * 32);  // filled, never re-hit -> dead on eviction
    sim.access(2 * 32);  // filled, re-hit below -> not dead
    sim.access(2 * 32);
    sim.access(4 * 32);  // evicts line 0 (LRU) -> dead++
    sim.finish();        // lines 2 (reused) and 4 (never) resident
    EXPECT_EQ(sim.stats().deadLines, 2u); // line 0 + line 4
}

TEST(CacheSimTest, FinishTwiceThrows)
{
    CacheSim sim(tinyConfig());
    sim.finish();
    EXPECT_THROW(sim.finish(), std::invalid_argument);
}

TEST(CacheSimTest, IrregularRegionCounting)
{
    CacheSim sim(tinyConfig());
    sim.setIrregularRegion(64, 128);
    sim.access(0);   // miss outside region
    sim.access(64);  // miss inside region
    sim.access(96);  // miss inside region (line 3)
    sim.access(64);  // hit: not counted
    sim.finish();
    EXPECT_EQ(sim.stats().irregularMisses, 2u);
}

TEST(CacheSimTest, HitRateAndDeadFractionHelpers)
{
    CacheStats stats;
    stats.accesses = 10;
    stats.hits = 4;
    stats.misses = 6;
    stats.linesFilled = 6;
    stats.deadLines = 3;
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.4);
    EXPECT_DOUBLE_EQ(stats.deadLineFraction(), 0.5);
    EXPECT_DOUBLE_EQ(CacheStats{}.hitRate(), 0.0);
    EXPECT_DOUBLE_EQ(CacheStats{}.deadLineFraction(), 0.0);
}

TEST(CacheSimTest, StreamingFootprintLargerThanCacheAllMisses)
{
    // Stream over 8 distinct lines through a 4-line cache, twice:
    // no reuse distance fits -> every access misses.
    CacheSim sim(tinyConfig());
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t line = 0; line < 8; ++line)
            sim.access(line * 32);
    }
    sim.finish();
    EXPECT_EQ(sim.stats().misses, 16u);
}

TEST(CacheSimTest, WorkingSetWithinCacheFullyHitsAfterWarmup)
{
    CacheSim sim(tinyConfig());
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t line = 0; line < 4; ++line)
            sim.access(line * 32);
    }
    sim.finish();
    EXPECT_EQ(sim.stats().misses, 4u);
    EXPECT_EQ(sim.stats().hits, 8u);
}

TEST(CacheSimTest, LruStackPropertyFullyAssociative)
{
    // The LRU inclusion (stack) property: for fully-associative LRU,
    // a larger cache never misses more on the same trace.
    Rng rng(17);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(rng.below(64) * 32);
    std::uint64_t previous = ~0ULL;
    for (std::uint32_t lines : {4u, 8u, 16u, 32u, 64u}) {
        CacheSim sim(CacheConfig{
            static_cast<std::uint64_t>(lines) * 32, 32, lines});
        for (std::uint64_t addr : trace)
            sim.access(addr);
        sim.finish();
        EXPECT_LE(sim.stats().misses, previous)
            << lines << " lines";
        previous = sim.stats().misses;
    }
}

TEST(SectoredCacheTest, ValidatesSectorGeometry)
{
    CacheConfig config{4 * 128, 128, 2};
    config.sectorBytes = 24;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.sectorBytes = 128; // sector == line is not sectored
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.sectorBytes = 32;
    EXPECT_NO_THROW(config.validate());
}

TEST(SectoredCacheTest, SectorMissOnResidentLineFillsOneSector)
{
    CacheConfig config{4 * 128, 128, 2};
    config.sectorBytes = 32;
    CacheSim sim(config);
    EXPECT_FALSE(sim.access(0));    // line fill, sector 0
    EXPECT_TRUE(sim.access(16));    // same sector
    EXPECT_FALSE(sim.access(32));   // resident line, new sector
    EXPECT_TRUE(sim.access(40));    // now valid
    sim.finish();
    EXPECT_EQ(sim.stats().misses, 2u);
    EXPECT_EQ(sim.stats().fillBytes, 64u); // two 32B sector fills
    EXPECT_EQ(sim.stats().linesFilled, 1u);
}

TEST(SectoredCacheTest, ScatteredAccessesFillLessThanLineMode)
{
    // 4-byte accesses strided by 128B: sectored fills 32B each,
    // unsectored fills 128B each.
    CacheConfig sectored{64 * 128, 128, 16};
    sectored.sectorBytes = 32;
    CacheConfig unsectored{64 * 128, 128, 16};
    CacheSim a(sectored), b(unsectored);
    for (std::uint64_t i = 0; i < 32; ++i) {
        a.access(i * 128);
        b.access(i * 128);
    }
    a.finish();
    b.finish();
    EXPECT_EQ(a.stats().fillBytes, 32u * 32u);
    EXPECT_EQ(b.stats().fillBytes, 32u * 128u);
}

TEST(SectoredCacheTest, FillBytesMatchesLineModeWhenUnsectored)
{
    CacheConfig config{4 * 32, 32, 2};
    CacheSim sim(config);
    sim.access(0);
    sim.access(64);
    sim.finish();
    EXPECT_EQ(sim.stats().fillBytes,
              sim.stats().trafficBytes(32));
}

TEST(SectoredCacheTest, IrregularFillBytesTracked)
{
    CacheConfig config{4 * 128, 128, 2};
    config.sectorBytes = 32;
    CacheSim sim(config);
    sim.setIrregularRegion(0, 128);
    sim.access(0);    // irregular sector fill
    sim.access(256);  // regular line
    sim.finish();
    EXPECT_EQ(sim.stats().irregularFillBytes, 32u);
    EXPECT_EQ(sim.stats().fillBytes, 64u);
}

} // namespace
} // namespace slo::cache
