/**
 * @file Parameterized invariant sweep across cache geometries: the
 * accounting identities must hold for every (capacity, line, ways,
 * sector) combination on a mixed streaming+random trace.
 */

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "matrix/rng.hpp"

namespace slo::cache
{
namespace
{

struct Geometry
{
    std::uint64_t capacity;
    std::uint32_t line;
    std::uint32_t ways;
    std::uint32_t sector;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry>
{
  protected:
    /** Mixed trace: a stream, a hot set, and uniform noise. */
    static std::vector<std::uint64_t>
    trace()
    {
        std::vector<std::uint64_t> result;
        Rng rng(99);
        for (int i = 0; i < 30000; ++i) {
            switch (i % 3) {
              case 0: // stream
                result.push_back(static_cast<std::uint64_t>(i) * 4);
                break;
              case 1: // hot set
                result.push_back(1 << 20 | (rng.below(64) * 4));
                break;
              default: // noise
                result.push_back(1 << 22 | (rng.below(1 << 18)));
            }
        }
        return result;
    }
};

TEST_P(CacheGeometrySweep, AccountingIdentitiesHold)
{
    const Geometry g = GetParam();
    CacheConfig config{g.capacity, g.line, g.ways};
    config.sectorBytes = g.sector;
    ASSERT_NO_THROW(config.validate());

    CacheSim sim(config);
    sim.setIrregularRegion(1 << 22, 1 << 23);
    for (std::uint64_t addr : trace())
        sim.access(addr);
    sim.finish();
    const CacheStats &stats = sim.stats();

    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    EXPECT_LE(stats.evictions, stats.misses);
    EXPECT_LE(stats.linesFilled, stats.misses);
    EXPECT_LE(stats.deadLines, stats.linesFilled);
    EXPECT_LE(stats.irregularMisses, stats.misses);
    EXPECT_LE(stats.irregularFillBytes, stats.fillBytes);
    if (g.sector == 0) {
        EXPECT_EQ(stats.fillBytes, stats.misses * g.line);
        EXPECT_EQ(stats.linesFilled, stats.misses);
    } else {
        EXPECT_EQ(stats.fillBytes, stats.misses * g.sector);
        // Sector misses on resident lines do not allocate new lines.
        EXPECT_LE(stats.linesFilled, stats.misses);
    }
    // Every line is filled at least once for the touched footprint.
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u); // the hot set must produce hits
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(
        Geometry{4 * 1024, 32, 2, 0}, Geometry{4 * 1024, 32, 16, 0},
        Geometry{64 * 1024, 32, 16, 0},
        Geometry{64 * 1024, 64, 8, 0},
        Geometry{64 * 1024, 128, 16, 0},
        Geometry{64 * 1024, 128, 16, 32},
        Geometry{6 * 1024 * 1024, 32, 16, 0}, // the real A6000 L2
        Geometry{6 * 1024 * 1024, 128, 16, 32},
        Geometry{96 * 32, 32, 2, 0}), // non-power-of-two sets
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "cap" + std::to_string(info.param.capacity) + "_line" +
               std::to_string(info.param.line) + "_w" +
               std::to_string(info.param.ways) + "_s" +
               std::to_string(info.param.sector);
    });

} // namespace
} // namespace slo::cache
