/** @file Tests for the multi-level cache hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"

namespace slo::cache
{
namespace
{

std::vector<CacheConfig>
twoLevels()
{
    // L1: 2 lines; L2: 8 lines (32B lines, fully associative-ish).
    return {CacheConfig{2 * 32, 32, 2}, CacheConfig{8 * 32, 32, 8}};
}

TEST(HierarchyTest, FirstTouchGoesToDram)
{
    CacheHierarchy h(twoLevels());
    EXPECT_EQ(h.access(0), 2u); // miss everywhere
    EXPECT_EQ(h.access(0), 0u); // L1 hit
    h.finish();
    EXPECT_EQ(h.levelStats(0).misses, 1u);
    EXPECT_EQ(h.levelStats(1).misses, 1u);
    EXPECT_EQ(h.dramTrafficBytes(), 32u);
}

TEST(HierarchyTest, L1EvictionFallsBackToL2)
{
    CacheHierarchy h(twoLevels());
    // Touch 3 lines: L1 (2 lines) must evict; L2 holds all 3.
    h.access(0 * 32);
    h.access(1 * 32);
    h.access(2 * 32); // evicts one L1 line
    // The evicted line hits in L2, not DRAM.
    const std::size_t level = h.access(0 * 32);
    EXPECT_GE(level, 0u);
    EXPECT_LE(level, 1u);
    h.finish();
    EXPECT_EQ(h.dramTrafficBytes(), 3u * 32u);
}

TEST(HierarchyTest, WorkingSetWithinL2AvoidsDramAfterWarmup)
{
    CacheHierarchy h(twoLevels());
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t line = 0; line < 8; ++line)
            h.access(line * 32);
    }
    h.finish();
    EXPECT_EQ(h.dramTrafficBytes(), 8u * 32u); // compulsory only
    EXPECT_GT(h.levelStats(1).hits, 0u);
}

TEST(HierarchyTest, ValidatesLevelOrdering)
{
    EXPECT_THROW(CacheHierarchy({CacheConfig{8 * 32, 32, 8},
                                 CacheConfig{2 * 32, 32, 2}}),
                 std::invalid_argument);
    EXPECT_THROW(CacheHierarchy({}), std::invalid_argument);
}

TEST(HierarchyTest, SingleLevelBehavesLikeCacheSim)
{
    CacheHierarchy h({CacheConfig{4 * 32, 32, 2}});
    CacheSim reference(CacheConfig{4 * 32, 32, 2});
    for (std::uint64_t addr :
         {0u, 32u, 0u, 64u, 96u, 128u, 32u, 0u}) {
        const bool hit = reference.access(addr);
        EXPECT_EQ(h.access(addr) == 0, hit);
    }
    h.finish();
    reference.finish();
    EXPECT_EQ(h.levelStats(0).misses, reference.stats().misses);
}

TEST(HierarchyTest, LevelStatsBoundsChecked)
{
    CacheHierarchy h(twoLevels());
    EXPECT_THROW(h.levelStats(2), std::invalid_argument);
}

} // namespace
} // namespace slo::cache
