/** @file Tests for Belady OPT replacement. */

#include <gtest/gtest.h>

#include "cache/belady.hpp"
#include "cache/cache.hpp"
#include "matrix/rng.hpp"

namespace slo::cache
{
namespace
{

CacheConfig
tinyConfig()
{
    return CacheConfig{4 * 32, 32, 2};
}

/** Fully-associative single-set config for classic OPT examples. */
CacheConfig
fullyAssocConfig(std::uint32_t lines)
{
    return CacheConfig{static_cast<std::uint64_t>(lines) * 32, 32,
                       lines};
}

std::vector<std::uint64_t>
lineTrace(std::initializer_list<std::uint64_t> lines)
{
    std::vector<std::uint64_t> trace;
    for (std::uint64_t line : lines)
        trace.push_back(line * 32);
    return trace;
}

std::uint64_t
lruMisses(const std::vector<std::uint64_t> &trace,
          const CacheConfig &config)
{
    CacheSim sim(config);
    for (std::uint64_t addr : trace)
        sim.access(addr);
    sim.finish();
    return sim.stats().misses;
}

TEST(BeladyTest, ClassicOptExample)
{
    // 2-line fully associative cache, trace where OPT beats LRU:
    // A B A C A B -> OPT bypasses the single-use C and keeps A and B
    // pinned, so only the three compulsory misses remain.
    const auto trace = lineTrace({0, 1, 0, 2, 0, 1});
    const CacheStats opt = simulateBelady(trace, fullyAssocConfig(2));
    EXPECT_EQ(opt.misses, 3u);
    EXPECT_GE(lruMisses(trace, fullyAssocConfig(2)), opt.misses);
}

TEST(BeladyTest, NeverWorseThanLruOnRandomTraces)
{
    Rng rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<std::uint64_t> trace;
        for (int i = 0; i < 2000; ++i)
            trace.push_back(rng.below(16) * 32);
        const CacheConfig config = tinyConfig();
        const CacheStats opt = simulateBelady(trace, config);
        EXPECT_LE(opt.misses, lruMisses(trace, config))
            << "trial " << trial;
    }
}

TEST(BeladyTest, MatchesLruWhenEverythingFits)
{
    const auto trace = lineTrace({0, 1, 2, 3, 0, 1, 2, 3});
    const CacheConfig config = tinyConfig(); // 4 lines, exact fit
    const CacheStats opt = simulateBelady(trace, config);
    EXPECT_EQ(opt.misses, 4u);
    EXPECT_EQ(opt.hits, 4u);
    EXPECT_EQ(lruMisses(trace, config), 4u);
}

TEST(BeladyTest, CompulsoryMissesAreUnavoidable)
{
    const auto trace = lineTrace({0, 1, 2, 3, 4, 5, 6, 7});
    const CacheStats opt = simulateBelady(trace, tinyConfig());
    EXPECT_EQ(opt.misses, 8u);
    EXPECT_EQ(opt.hits, 0u);
}

TEST(BeladyTest, EmptyTrace)
{
    const CacheStats opt = simulateBelady({}, tinyConfig());
    EXPECT_EQ(opt.accesses, 0u);
    EXPECT_EQ(opt.misses, 0u);
}

TEST(BeladyTest, IrregularRegionCounted)
{
    const auto trace = lineTrace({0, 10, 0, 10});
    // Region covering line 10 only.
    const CacheStats opt =
        simulateBelady(trace, tinyConfig(), 10 * 32, 11 * 32);
    EXPECT_EQ(opt.irregularMisses, 1u);
}

TEST(BeladyTest, AccountsDeadLines)
{
    // Lines 0..7 touched once each: all dead.
    const auto trace = lineTrace({0, 1, 2, 3, 4, 5, 6, 7});
    const CacheStats opt = simulateBelady(trace, tinyConfig());
    EXPECT_EQ(opt.deadLines, 8u);
}

TEST(BeladyTest, ScanResistance)
{
    // Hot set {0,1} + one-shot scan lines 4..9; OPT must keep the hot
    // lines resident throughout (2-line fully associative cache).
    std::vector<std::uint64_t> trace;
    auto push = [&trace](std::uint64_t line) {
        trace.push_back(line * 32);
    };
    push(0);
    push(1);
    for (std::uint64_t scan = 4; scan < 10; ++scan) {
        push(scan);
        push(0);
        push(1);
    }
    const CacheStats opt = simulateBelady(trace, fullyAssocConfig(2));
    // Misses: 0, 1, six scan lines; every re-access of 0/1 hits except
    // those displaced... with bypass OPT keeps {0,1} pinned: 8 misses.
    EXPECT_EQ(opt.misses, 8u);
    EXPECT_EQ(opt.hits, 12u);
}

} // namespace
} // namespace slo::cache
