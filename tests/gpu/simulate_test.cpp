/** @file End-to-end GPU simulation tests. */

#include <gtest/gtest.h>

#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "reorder/rabbit.hpp"

namespace slo::gpu
{
namespace
{

GpuSpec
smallSpec()
{
    return GpuSpec::a6000ScaledL2(64 * 1024);
}

TEST(SimulateTest, TrafficNeverBelowUniquelyTouchedBytes)
{
    const Csr m = gen::rmatSocial(12, 8.0, 3);
    const SimReport report = simulateKernel(m, smallSpec());
    // Traffic >= the streamed CSR arrays (which are touched once each).
    EXPECT_GT(report.trafficBytes, 0u);
    EXPECT_GE(report.normalizedTraffic, 0.8);
    EXPECT_GT(report.normalizedRuntime, 0.9);
}

TEST(SimulateTest, TinyMatrixReachesCompulsoryTraffic)
{
    // Footprint far below L2: only compulsory misses remain, and
    // normalized traffic approaches 1 (line-granularity rounding only).
    const Csr m = gen::plantedPartition(4096, 8, 8.0, 1.0, 5);
    const SimReport report = simulateKernel(m, smallSpec());
    EXPECT_LT(report.normalizedTraffic, 1.1);
    EXPECT_GE(report.normalizedTraffic, 0.95);
}

TEST(SimulateTest, RandomOrderingRaisesTraffic)
{
    const Csr m = gen::plantedPartition(65536, 64, 10.0, 1.0, 7);
    const Csr shuffled = m.permutedSymmetric(
        Permutation::random(m.numRows(), 3));
    const SimReport natural = simulateKernel(m, smallSpec());
    const SimReport random = simulateKernel(shuffled, smallSpec());
    EXPECT_GT(random.normalizedTraffic,
              1.3 * natural.normalizedTraffic);
    EXPECT_GT(random.normalizedRuntime, natural.normalizedRuntime);
    EXPECT_LT(random.l2HitRate, natural.l2HitRate);
}

TEST(SimulateTest, RabbitRecoversShuffledLocality)
{
    const Csr m = gen::hierarchicalCommunity(65536, 8, 4, 10.0, 0.25,
                                             11);
    const Csr shuffled = m.permutedSymmetric(
        Permutation::random(m.numRows(), 9));
    const SimReport before = simulateKernel(shuffled, smallSpec());
    const Csr reordered = shuffled.permutedSymmetric(
        reorder::rabbitOrder(shuffled).perm);
    const SimReport after = simulateKernel(reordered, smallSpec());
    EXPECT_LT(after.normalizedTraffic,
              0.75 * before.normalizedTraffic);
}

TEST(SimulateTest, BeladyNeverExceedsLruTraffic)
{
    const Csr m = gen::rmatSocial(13, 8.0, 13);
    SimOptions options;
    const SimReport lru = simulateKernel(m, smallSpec(), options);
    options.useBelady = true;
    const SimReport opt = simulateKernel(m, smallSpec(), options);
    EXPECT_LE(opt.trafficBytes, lru.trafficBytes);
    EXPECT_EQ(opt.compulsoryBytes, lru.compulsoryBytes);
}

TEST(SimulateTest, KernelsHaveDifferentCompulsoryTraffic)
{
    const Csr m = gen::erdosRenyi(32768, 8.0, 17);
    SimOptions csr, coo, spmm;
    coo.kernel = kernels::KernelKind::SpmvCoo;
    spmm.kernel = kernels::KernelKind::SpmmCsr;
    spmm.denseCols = 4;
    const SimReport r_csr = simulateKernel(m, smallSpec(), csr);
    const SimReport r_coo = simulateKernel(m, smallSpec(), coo);
    const SimReport r_spmm = simulateKernel(m, smallSpec(), spmm);
    EXPECT_GT(r_coo.compulsoryBytes, r_csr.compulsoryBytes);
    EXPECT_GT(r_spmm.compulsoryBytes, r_csr.compulsoryBytes);
    EXPECT_GT(r_spmm.trafficBytes, r_csr.trafficBytes);
}

TEST(SimulateTest, SpmmNormalizedRuntimeWorsensWithK)
{
    // Table IV's trend: the relative penalty of poor locality grows
    // with the dense-matrix width.
    const Csr m = gen::rmatSocial(14, 10.0, 19);
    const Csr shuffled = m.permutedSymmetric(
        Permutation::random(m.numRows(), 5));
    SimOptions k4, k16;
    k4.kernel = kernels::KernelKind::SpmmCsr;
    k4.denseCols = 4;
    k16.kernel = kernels::KernelKind::SpmmCsr;
    k16.denseCols = 16;
    const SimReport r4 = simulateKernel(shuffled, smallSpec(), k4);
    const SimReport r16 = simulateKernel(shuffled, smallSpec(), k16);
    EXPECT_GT(r16.normalizedRuntime, r4.normalizedRuntime);
}

TEST(SimulateTest, StreamAndRandomBytesPartitionTraffic)
{
    const Csr m = gen::rmatSocial(12, 8.0, 23);
    const SimReport report = simulateKernel(m, smallSpec());
    EXPECT_EQ(report.streamMissBytes + report.randomMissBytes,
              report.trafficBytes);
    EXPECT_GT(report.randomMissBytes, 0u);
}

TEST(SimulateTest, RowWindowChangesInterleavingNotValidity)
{
    const Csr m = gen::rmatSocial(12, 8.0, 29);
    SimOptions seq, win;
    win.rowWindow = 64;
    const SimReport a = simulateKernel(m, smallSpec(), seq);
    const SimReport b = simulateKernel(m, smallSpec(), win);
    EXPECT_EQ(a.cacheStats.accesses, b.cacheStats.accesses);
    // Traffic may differ, but both stay in a sane band.
    EXPECT_GT(b.normalizedTraffic, 0.8);
}

TEST(SimulateTest, RequiresSquare)
{
    const Csr rect(2, 3, {0, 0, 0}, {}, {});
    EXPECT_THROW(simulateKernel(rect, smallSpec()),
                 std::invalid_argument);
}

} // namespace
} // namespace slo::gpu
