/**
 * @file Parameterized consistency sweep over the end-to-end simulator:
 * every (kernel, ordering, spec) combination must produce an
 * internally consistent SimReport.
 */

#include <functional>

#include <gtest/gtest.h>

#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "reorder/reorder.hpp"

namespace slo::gpu
{
namespace
{

struct SimCase
{
    std::string name;
    kernels::KernelKind kernel;
    Index denseCols;
    reorder::Technique technique;
};

class SimSweepTest : public ::testing::TestWithParam<SimCase>
{
  protected:
    static const Csr &
    matrix()
    {
        static const Csr m =
            gen::temporalInteraction(16384, 128, 8.0, 0.02, 60.0, 3)
                .permutedSymmetric(Permutation::random(16384, 7));
        return m;
    }
};

TEST_P(SimSweepTest, ReportIsInternallyConsistent)
{
    const SimCase c = GetParam();
    const Csr reordered = matrix().permutedSymmetric(
        reorder::computeOrdering(c.technique, matrix()));
    const GpuSpec spec = GpuSpec::a6000ScaledL2(64 * 1024);
    SimOptions options;
    options.kernel = c.kernel;
    options.denseCols = c.denseCols;
    const SimReport report =
        simulateKernel(reordered, spec, options);

    // Traffic partitions exactly.
    EXPECT_EQ(report.streamMissBytes + report.randomMissBytes,
              report.trafficBytes);
    EXPECT_EQ(report.trafficBytes, report.cacheStats.fillBytes);
    // Normalizations are self-consistent.
    EXPECT_NEAR(report.normalizedTraffic,
                static_cast<double>(report.trafficBytes) /
                    static_cast<double>(report.compulsoryBytes),
                1e-12);
    EXPECT_NEAR(report.normalizedRuntime,
                report.modeledSeconds / report.idealSeconds, 1e-12);
    // Physical floors: the modelled run cannot beat streaming the
    // simulated traffic at full bandwidth.
    EXPECT_GE(report.modeledSeconds,
              static_cast<double>(report.trafficBytes) /
                  (spec.streamBandwidthGBs * 1e9) * (1.0 - 1e-9));
    EXPECT_GT(report.idealSeconds, 0.0);
    // Rates live in [0, 1].
    EXPECT_GE(report.l2HitRate, 0.0);
    EXPECT_LE(report.l2HitRate, 1.0);
    EXPECT_GE(report.deadLineFraction, 0.0);
    EXPECT_LE(report.deadLineFraction, 1.0);
    // The longest row is a real row.
    EXPECT_GE(report.maxRowNnz, 1);
    EXPECT_LE(static_cast<Offset>(report.maxRowNnz),
              reordered.numNonZeros());
}

std::vector<SimCase>
makeCases()
{
    std::vector<SimCase> cases;
    const std::vector<std::pair<std::string, reorder::Technique>>
        techniques = {
            {"random", reorder::Technique::Random},
            {"dbg", reorder::Technique::Dbg},
            {"rabbitpp", reorder::Technique::RabbitPlusPlus},
        };
    for (const auto &[tname, technique] : techniques) {
        cases.push_back({"csr_" + tname,
                         kernels::KernelKind::SpmvCsr, 1, technique});
        cases.push_back({"coo_" + tname,
                         kernels::KernelKind::SpmvCoo, 1, technique});
        cases.push_back({"spmm4_" + tname,
                         kernels::KernelKind::SpmmCsr, 4, technique});
        cases.push_back({"spmm32_" + tname,
                         kernels::KernelKind::SpmmCsr, 32, technique});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByTechnique, SimSweepTest,
    ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<SimCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace slo::gpu
