/** @file Tests for compulsory-traffic formulas and the run-time model. */

#include <gtest/gtest.h>

#include "gpu/traffic_model.hpp"

namespace slo::gpu
{
namespace
{

TEST(TrafficModelTest, SpmvCsrFormulaMatchesPaper)
{
    // (2*N + (N+1) + 2*NZ) * 4B
    EXPECT_EQ(compulsoryTrafficBytes(kernels::KernelKind::SpmvCsr, 100,
                                     500),
              (200u + 101u + 1000u) * 4u);
}

TEST(TrafficModelTest, SpmvCooFormula)
{
    EXPECT_EQ(compulsoryTrafficBytes(kernels::KernelKind::SpmvCoo, 100,
                                     500),
              (200u + 1500u) * 4u);
}

TEST(TrafficModelTest, SpmmFormulaScalesWithK)
{
    const auto k4 = compulsoryTrafficBytes(
        kernels::KernelKind::SpmmCsr, 100, 500, 4);
    const auto k256 = compulsoryTrafficBytes(
        kernels::KernelKind::SpmmCsr, 100, 500, 256);
    EXPECT_EQ(k4, (2u * 400u + 101u + 1000u) * 4u);
    EXPECT_GT(k256, k4);
}

TEST(TrafficModelTest, RejectsBadArguments)
{
    EXPECT_THROW(compulsoryTrafficBytes(kernels::KernelKind::SpmvCsr,
                                        -1, 0),
                 std::invalid_argument);
    EXPECT_THROW(compulsoryTrafficBytes(kernels::KernelKind::SpmmCsr,
                                        10, 10, 0),
                 std::invalid_argument);
}

TEST(TrafficModelTest, IdealRuntimeUsesStreamBandwidth)
{
    GpuSpec spec;
    spec.streamBandwidthGBs = 672.0;
    // 672 GB at 672 GB/s = 1 second.
    EXPECT_NEAR(idealRuntimeSeconds(spec, 672ULL * 1000 * 1000 * 1000),
                1.0, 1e-9);
}

TEST(TrafficModelTest, RandomBytesAreDerated)
{
    GpuSpec spec;
    spec.streamBandwidthGBs = 100.0;
    spec.randomAccessEfficiency = 0.5;
    const auto gb = 100ULL * 1000 * 1000 * 1000;
    EXPECT_NEAR(modeledRuntimeSeconds(spec, gb, 0), 1.0, 1e-9);
    EXPECT_NEAR(modeledRuntimeSeconds(spec, 0, gb), 2.0, 1e-9);
    EXPECT_NEAR(modeledRuntimeSeconds(spec, gb, gb), 3.0, 1e-9);
}

TEST(GpuSpecTest, A6000MatchesTableI)
{
    const GpuSpec spec = GpuSpec::a6000();
    EXPECT_EQ(spec.l2.capacityBytes, 6ULL * 1024 * 1024);
    EXPECT_DOUBLE_EQ(spec.peakBandwidthGBs, 768.0);
    EXPECT_DOUBLE_EQ(spec.streamBandwidthGBs, 672.0);
    EXPECT_EQ(spec.dramCapacityBytes, 48ULL * 1024 * 1024 * 1024);
    EXPECT_NO_THROW(spec.l2.validate());
}

TEST(GpuSpecTest, ScaledL2KeepsOtherParameters)
{
    const GpuSpec spec = GpuSpec::a6000ScaledL2(64 * 1024);
    EXPECT_EQ(spec.l2.capacityBytes, 64u * 1024u);
    EXPECT_DOUBLE_EQ(spec.streamBandwidthGBs, 672.0);
}

TEST(GpuSpecTest, ScaledL2ValidatesGeometry)
{
    EXPECT_THROW(GpuSpec::a6000ScaledL2(100), std::invalid_argument);
}

} // namespace
} // namespace slo::gpu
