/**
 * @file
 * Tests of the multi-backend Simulator facade: name round-trips, the
 * analytic roofline's by-construction invariants, delegation to the
 * cache simulation, the Belady bound across backends, and the fiber
 * cache's reuse behaviour.
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hpp"
#include "matrix/generators.hpp"
#include "matrix/permutation.hpp"

namespace slo::gpu
{
namespace
{

GpuSpec
smallSpec()
{
    return GpuSpec::a6000ScaledL2(16 * 1024);
}

SimOptions
spgemmOptions()
{
    SimOptions options;
    options.kernel = kernels::KernelKind::SpgemmAA;
    return options;
}

TEST(SimulatorTest, BackendNamesRoundTrip)
{
    EXPECT_EQ(allBackends().size(), 4u);
    for (const SimBackend backend : allBackends()) {
        EXPECT_EQ(backendFromName(backendName(backend)), backend);
        const auto simulator = makeSimulator(backend, smallSpec());
        EXPECT_EQ(simulator->backend(), backend);
    }
    EXPECT_THROW(static_cast<void>(backendFromName("opt")),
                 std::invalid_argument);
}

TEST(SimulatorTest, AnalyticIsTheRoofline)
{
    const Csr m = gen::rmatSocial(9, 6.0, 5);
    const auto simulator =
        makeSimulator(SimBackend::Analytic, smallSpec());
    for (const kernels::KernelKind kernel :
         {kernels::KernelKind::SpmvCsr,
          kernels::KernelKind::SpgemmAA,
          kernels::KernelKind::SpgemmAAT}) {
        SimOptions options;
        options.kernel = kernel;
        const SimReport report = simulator->simulate(m, options);
        EXPECT_EQ(report.trafficBytes, report.compulsoryBytes);
        EXPECT_DOUBLE_EQ(report.normalizedTraffic, 1.0);
        EXPECT_GE(report.normalizedRuntime, 1.0);
        EXPECT_EQ(report.cacheStats.hits + report.cacheStats.misses,
                  report.cacheStats.accesses);
        EXPECT_EQ(report.hasSpgemm, kernels::isSpgemm(kernel));
    }
}

TEST(SimulatorTest, CacheLruDelegatesToSimulateKernel)
{
    const Csr m = gen::plantedPartition(1024, 8, 6.0, 0.9, 7);
    const auto simulator =
        makeSimulator(SimBackend::CacheLru, smallSpec());
    const SimOptions options = spgemmOptions();
    const SimReport facade = simulator->simulate(m, options);
    const SimReport direct = simulateKernel(m, smallSpec(), options);
    EXPECT_EQ(simReportJson(facade).dump(),
              simReportJson(direct).dump());
    EXPECT_TRUE(facade.hasSpgemm);
    EXPECT_GT(facade.spgemm.flops, 0u);
}

TEST(SimulatorTest, BeladyNeverExceedsLruTraffic)
{
    const Csr m = gen::rmatSocial(10, 6.0, 13);
    const SimOptions options = spgemmOptions();
    const SimReport lru =
        makeSimulator(SimBackend::CacheLru, smallSpec())
            ->simulate(m, options);
    const SimReport opt =
        makeSimulator(SimBackend::CacheBelady, smallSpec())
            ->simulate(m, options);
    EXPECT_EQ(lru.cacheStats.accesses, opt.cacheStats.accesses);
    EXPECT_LE(opt.trafficBytes, lru.trafficBytes);
    EXPECT_EQ(lru.spgemm.flops, opt.spgemm.flops);
    EXPECT_EQ(lru.spgemm.nnzC, opt.spgemm.nnzC);
}

TEST(SimulatorTest, FiberCacheRewardsBRowReuse)
{
    // A community-ordered matrix re-fetches B rows while they are
    // still resident; shuffling the same matrix spreads the fetches
    // out. The fiber model must see more misses (more fiber fill
    // traffic) on the shuffled ordering.
    const Csr m = gen::hierarchicalCommunity(16384, 8, 4, 8.0, 0.25,
                                             11);
    const Csr shuffled = m.permutedSymmetric(
        Permutation::random(m.numRows(), 9));
    const auto simulator =
        makeSimulator(SimBackend::FiberCache, smallSpec());
    const SimOptions options = spgemmOptions();
    const SimReport natural = simulator->simulate(m, options);
    const SimReport random = simulator->simulate(shuffled, options);
    EXPECT_EQ(natural.cacheStats.hits + natural.cacheStats.misses,
              natural.cacheStats.accesses);
    EXPECT_GT(natural.cacheStats.hits, 0u);
    EXPECT_GT(random.randomMissBytes, natural.randomMissBytes);
    // Same multiply: the merge stats are ordering-dependent only in
    // reuse distance, never in flop/output counts.
    EXPECT_EQ(natural.spgemm.flops, random.spgemm.flops);
    EXPECT_EQ(natural.spgemm.nnzC, random.spgemm.nnzC);
}

TEST(SimulatorTest, FiberCacheIsRepeatable)
{
    const Csr m = gen::rmatSocial(9, 5.0, 23);
    const auto simulator =
        makeSimulator(SimBackend::FiberCache, smallSpec());
    for (const kernels::KernelKind kernel :
         {kernels::KernelKind::SpmvCsr,
          kernels::KernelKind::SpmvCoo,
          kernels::KernelKind::SpmmCsr,
          kernels::KernelKind::SpgemmAAT}) {
        SimOptions options;
        options.kernel = kernel;
        const SimReport first = simulator->simulate(m, options);
        const SimReport second = simulator->simulate(m, options);
        EXPECT_EQ(simReportJson(first).dump(),
                  simReportJson(second).dump())
            << "kernel " << static_cast<int>(kernel);
    }
}

} // namespace
} // namespace slo::gpu
