/** @file Tests for the multilevel k-way graph partitioner. */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "partition/partition.hpp"
#include "reorder/reorder.hpp"

namespace slo::partition
{
namespace
{

/** Max part weight over perfect balance. */
double
imbalanceOf(const PartitionResult &result, Index n)
{
    std::vector<Index> weights(
        static_cast<std::size_t>(result.parts), 0);
    for (Index part : result.assignment)
        ++weights[static_cast<std::size_t>(part)];
    const Index max_weight =
        *std::max_element(weights.begin(), weights.end());
    const double perfect = static_cast<double>(n) /
                           static_cast<double>(result.parts);
    return static_cast<double>(max_weight) / perfect;
}

TEST(PartitionTest, AssignmentCoversAllParts)
{
    const Csr g = gen::grid2d(64, 64, 0.0, 1);
    PartitionOptions options;
    options.numParts = 8;
    const PartitionResult result = partitionGraph(g, options);
    EXPECT_EQ(result.parts, 8);
    std::vector<bool> seen(8, false);
    for (Index part : result.assignment) {
        ASSERT_GE(part, 0);
        ASSERT_LT(part, 8);
        seen[static_cast<std::size_t>(part)] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(PartitionTest, BisectionOfTwoCliquesFindsTheCut)
{
    // Two 64-cliques joined by one edge: the optimal bisection cuts 1.
    Coo coo(128, 128);
    for (Index i = 0; i < 64; ++i) {
        for (Index j = i + 1; j < 64; ++j) {
            coo.addSymmetric(i, j);
            coo.addSymmetric(64 + i, 64 + j);
        }
    }
    coo.addSymmetric(0, 64);
    const Csr g = Csr::fromCoo(coo);
    PartitionOptions options;
    options.numParts = 2;
    const PartitionResult result = partitionGraph(g, options);
    EXPECT_EQ(result.cutEdges, 1);
}

TEST(PartitionTest, RecoversShuffledPlantedPartition)
{
    const Index n = 4096;
    const Csr g = gen::plantedPartition(n, 8, 12.0, 0.5, 3)
                      .permutedSymmetric(Permutation::random(n, 7));
    PartitionOptions options;
    options.numParts = 8;
    const PartitionResult result = partitionGraph(g, options);
    // Inter-community edges ~ n*0.5/2 stored once ~ 1024; allow slack
    // for the random overlay and imperfect refinement.
    EXPECT_LT(result.cutEdges, g.numNonZeros() / 2 / 8);
}

TEST(PartitionTest, GridCutScalesLikePerimeter)
{
    const Csr g = gen::grid2d(64, 64, 0.0, 5);
    PartitionOptions options;
    options.numParts = 4;
    const PartitionResult result = partitionGraph(g, options);
    // A 4-way split of a 64x64 grid should cut O(3*64) edges; random
    // assignment would cut ~3/4 of ~8k.
    EXPECT_LT(result.cutEdges, 600);
}

TEST(PartitionTest, BalanceIsRespected)
{
    const Csr g = gen::rmatSocial(12, 8.0, 9);
    PartitionOptions options;
    options.numParts = 8;
    const PartitionResult result = partitionGraph(g, options);
    EXPECT_LT(imbalanceOf(result, g.numRows()), 1.6);
}

TEST(PartitionTest, CutMatchesCutOf)
{
    const Csr g = gen::erdosRenyi(512, 6.0, 11);
    const PartitionResult result = partitionGraph(g, {4});
    EXPECT_EQ(result.cutEdges, cutOf(g, result.assignment));
}

TEST(PartitionTest, SinglePartIsWholeGraph)
{
    const Csr g = gen::erdosRenyi(128, 4.0, 2);
    PartitionOptions options;
    options.numParts = 1;
    const PartitionResult result = partitionGraph(g, options);
    EXPECT_EQ(result.cutEdges, 0);
    for (Index part : result.assignment)
        EXPECT_EQ(part, 0);
}

TEST(PartitionTest, NonPowerOfTwoParts)
{
    const Csr g = gen::grid2d(48, 48, 0.0, 3);
    PartitionOptions options;
    options.numParts = 6;
    const PartitionResult result = partitionGraph(g, options);
    std::vector<Index> weights(6, 0);
    for (Index part : result.assignment) {
        ASSERT_LT(part, 6);
        ++weights[static_cast<std::size_t>(part)];
    }
    for (Index w : weights)
        EXPECT_GT(w, 0);
}

TEST(PartitionTest, HandlesDisconnectedAndEdgelessGraphs)
{
    const Csr empty(64, 64, std::vector<Offset>(65, 0), {}, {});
    const PartitionResult result = partitionGraph(empty, {4});
    EXPECT_EQ(result.cutEdges, 0);
    Coo coo(64, 64);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(60, 61);
    EXPECT_NO_THROW(partitionGraph(Csr::fromCoo(coo), {4}));
}

TEST(PartitionTest, DeterministicInSeed)
{
    const Csr g = gen::rmatSocial(10, 8.0, 13);
    PartitionOptions options;
    options.seed = 99;
    const PartitionResult a = partitionGraph(g, options);
    const PartitionResult b = partitionGraph(g, options);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(PartitionTest, OptionValidation)
{
    const Csr g = gen::erdosRenyi(64, 4.0, 1);
    PartitionOptions options;
    options.numParts = 0;
    EXPECT_THROW(partitionGraph(g, options), std::invalid_argument);
    options.numParts = 2;
    options.imbalance = 0.9;
    EXPECT_THROW(partitionGraph(g, options), std::invalid_argument);
}

TEST(PartitionOrderTest, PartsBecomeContiguousIdRanges)
{
    const Csr g = gen::plantedPartition(2048, 8, 10.0, 0.5, 17)
                      .permutedSymmetric(Permutation::random(2048, 3));
    PartitionOptions options;
    options.numParts = 8;
    const PartitionResult result = partitionGraph(g, options);
    const Permutation perm = partitionOrder(g, options);
    // Vertices of the same part map to a contiguous new-id interval.
    std::vector<Index> min_id(8, 2048), max_id(8, -1), count(8, 0);
    for (Index v = 0; v < 2048; ++v) {
        const auto p = static_cast<std::size_t>(
            result.assignment[static_cast<std::size_t>(v)]);
        min_id[p] = std::min(min_id[p], perm.newId(v));
        max_id[p] = std::max(max_id[p], perm.newId(v));
        ++count[p];
    }
    for (std::size_t p = 0; p < 8; ++p) {
        if (count[p] > 0) {
            EXPECT_EQ(max_id[p] - min_id[p] + 1, count[p]);
        }
    }
}

TEST(PartitionOrderTest, ImprovesTrafficOverRandomViaRegistry)
{
    const Csr g = gen::plantedPartition(8192, 32, 10.0, 1.0, 23)
                      .permutedSymmetric(Permutation::random(8192, 5));
    const Permutation p = reorder::computeOrdering(
        reorder::Technique::Partition, g);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
}

} // namespace
} // namespace slo::partition
