/**
 * @file Invariance properties that tie modules together: metrics and
 * simulated traffic must behave predictably under relabelling, and the
 * artifact cache must survive corruption.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "community/metrics.hpp"
#include "core/artifact_cache.hpp"
#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/rabbit.hpp"

namespace slo
{
namespace
{

TEST(InvarianceTest, InsularityIsPermutationInvariant)
{
    const Csr g = gen::temporalInteraction(4096, 64, 8.0, 0.02, 60.0,
                                           3);
    const reorder::RabbitResult rabbit = reorder::rabbitOrder(g);
    const double before =
        community::insularity(g, rabbit.clustering);

    const Permutation perm = Permutation::random(g.numRows(), 7);
    const Csr permuted = g.permutedSymmetric(perm);
    // Move the labels into the new index space.
    std::vector<Index> labels(
        static_cast<std::size_t>(g.numRows()));
    for (Index v = 0; v < g.numRows(); ++v) {
        labels[static_cast<std::size_t>(perm.newId(v))] =
            rabbit.clustering.label(v);
    }
    const double after = community::insularity(
        permuted, community::Clustering(std::move(labels)));
    EXPECT_DOUBLE_EQ(before, after);
}

TEST(InvarianceTest, ModularityIsPermutationInvariant)
{
    const Csr g = gen::plantedPartition(2048, 16, 10.0, 1.0, 5);
    const community::Clustering truth =
        community::Clustering::contiguousBlocks(2048, 128);
    const double before = community::modularity(g, truth);
    const Permutation perm = Permutation::random(2048, 9);
    std::vector<Index> labels(2048);
    for (Index v = 0; v < 2048; ++v)
        labels[static_cast<std::size_t>(perm.newId(v))] =
            truth.label(v);
    const double after = community::modularity(
        g.permutedSymmetric(perm),
        community::Clustering(std::move(labels)));
    EXPECT_NEAR(before, after, 1e-12);
}

TEST(InvarianceTest, SkewIsPermutationInvariant)
{
    const Csr g = gen::rmatSocial(11, 10.0, 13);
    const double before = degreeSkew(g);
    const double after = degreeSkew(
        g.permutedSymmetric(Permutation::random(g.numRows(), 3)));
    EXPECT_NEAR(before, after, 1e-12);
}

TEST(InvarianceTest, CompulsoryTrafficIsOrderingInvariant)
{
    const Csr g = gen::rmatSocial(12, 8.0, 17);
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const auto a = gpu::simulateKernel(g, spec);
    const auto b = gpu::simulateKernel(
        g.permutedSymmetric(Permutation::random(g.numRows(), 5)),
        spec);
    EXPECT_EQ(a.compulsoryBytes, b.compulsoryBytes);
    EXPECT_EQ(a.cacheStats.accesses, b.cacheStats.accesses);
}

TEST(InvarianceTest, SimulationIsDeterministic)
{
    const Csr g = gen::rmatSocial(11, 8.0, 19);
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    const auto a = gpu::simulateKernel(g, spec);
    const auto b = gpu::simulateKernel(g, spec);
    EXPECT_EQ(a.trafficBytes, b.trafficBytes);
    EXPECT_EQ(a.cacheStats.hits, b.cacheStats.hits);
    EXPECT_DOUBLE_EQ(a.modeledSeconds, b.modeledSeconds);
}

class CacheCorruptionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "slo-corrupt-test";
        std::filesystem::create_directories(dir_);
        setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        unsetenv("SLO_CACHE_DIR");
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

TEST_F(CacheCorruptionTest, CorruptCsrEntryIsRebuilt)
{
    const std::string key = "corrupt-csr";
    auto build = [] { return gen::erdosRenyi(128, 4.0, 1); };
    const Csr original = core::loadOrBuildCsr(key, build);
    // Clobber the cached file.
    const auto path = std::filesystem::path(core::cacheDir()) /
                      (core::cacheFileStem(key) + ".csr");
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "garbage";
    }
    const Csr rebuilt = core::loadOrBuildCsr(key, build);
    EXPECT_EQ(rebuilt, original);
}

TEST_F(CacheCorruptionTest, CorruptVectorEntryIsRebuilt)
{
    const std::string key = "corrupt-vec";
    auto build = [] { return std::vector<Index>{1, 2, 3}; };
    (void)core::loadOrBuildIndexVector(key, build);
    const auto path = std::filesystem::path(core::cacheDir()) /
                      (core::cacheFileStem(key) + ".vec");
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "XX";
    }
    EXPECT_EQ(core::loadOrBuildIndexVector(key, build),
              (std::vector<Index>{1, 2, 3}));
}

} // namespace
} // namespace slo
