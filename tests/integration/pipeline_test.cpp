/**
 * @file Cross-module integration tests: the paper's full pipeline
 * (generate -> reorder -> permute -> simulate -> model) and the key
 * qualitative claims it must reproduce.
 */

#include <gtest/gtest.h>

#include "community/metrics.hpp"
#include "core/experiment.hpp"
#include "core/stats.hpp"
#include "gpu/simulate.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/rabbitpp.hpp"
#include "reorder/reorder.hpp"

namespace slo
{
namespace
{

gpu::GpuSpec
smallSpec()
{
    return gpu::GpuSpec::a6000ScaledL2(64 * 1024);
}

/** A community-structured graph whose footprint exceeds the L2. */
Csr
bigCommunityGraph()
{
    return gen::hierarchicalCommunity(65536, 8, 4, 12.0, 0.25, 3)
        .permutedSymmetric(Permutation::random(65536, 7));
}

TEST(PipelineTest, TechniqueOrderingMatchesPaperOnCommunityGraph)
{
    // Observation 4: community-based reordering beats degree-based
    // techniques on community-structured inputs; RANDOM is worst.
    const Csr g = bigCommunityGraph();
    const gpu::GpuSpec spec = smallSpec();
    auto traffic = [&](reorder::Technique t) {
        return gpu::simulateKernel(
                   g.permutedSymmetric(reorder::computeOrdering(t, g)),
                   spec)
            .normalizedTraffic;
    };
    const double random = traffic(reorder::Technique::Random);
    const double degsort = traffic(reorder::Technique::DegSort);
    const double rabbit = traffic(reorder::Technique::Rabbit);
    EXPECT_GT(random, degsort * 0.99);
    EXPECT_GT(degsort, rabbit);
    EXPECT_LT(rabbit, 1.35);
}

TEST(PipelineTest, RabbitPlusPlusHelpsLowInsularityMatrix)
{
    // Sec. VI: on skewed, low-insularity inputs RABBIT++ reduces
    // traffic relative to RABBIT.
    const Csr g =
        gen::temporalInteraction(65536, 512, 8.0, 0.03, 120.0, 11)
            .permutedSymmetric(Permutation::random(65536, 13));
    const gpu::GpuSpec spec = smallSpec();
    const reorder::RabbitResult rabbit = reorder::rabbitOrder(g);
    const double ins = community::insularity(g, rabbit.clustering);
    EXPECT_LT(ins, 0.95) << "fixture should be low-insularity";
    const double t_rabbit =
        gpu::simulateKernel(g.permutedSymmetric(rabbit.perm), spec)
            .normalizedTraffic;
    const reorder::RabbitPlusResult rpp = reorder::rabbitPlusFromRabbit(
        g, rabbit, {true, reorder::HubTreatment::HubGroup, 1.0});
    const double t_rpp =
        gpu::simulateKernel(g.permutedSymmetric(rpp.perm), spec)
            .normalizedTraffic;
    EXPECT_LT(t_rpp, t_rabbit * 1.02);
}

TEST(PipelineTest, InsularityCorrelatesWithRuntime)
{
    // Fig. 3's trend on a controlled sweep: lower inter-community
    // degree -> higher insularity -> lower normalized run time.
    const gpu::GpuSpec spec = smallSpec();
    std::vector<double> insularities, runtimes;
    for (double inter : {0.5, 2.0, 6.0, 12.0}) {
        Csr g = gen::plantedPartition(65536, 512, 10.0, inter, 17)
                    .permutedSymmetric(Permutation::random(65536, 19));
        const reorder::RabbitResult rabbit = reorder::rabbitOrder(g);
        insularities.push_back(
            community::insularity(g, rabbit.clustering));
        runtimes.push_back(
            gpu::simulateKernel(g.permutedSymmetric(rabbit.perm), spec)
                .normalizedRuntime);
    }
    EXPECT_LT(core::pearson(insularities, runtimes), -0.7);
}

TEST(PipelineTest, SkewAnticorrelatesWithInsularity)
{
    // Sec. V-B: Pearson(insularity, skew) = -0.721 on the paper's
    // corpus; reproduce the sign and strength on an RMAT skew sweep.
    std::vector<double> skews, insularities;
    for (double a : {0.30, 0.45, 0.57, 0.65}) {
        const double bc = (1.0 - a) / 3.0;
        Csr g = gen::rmat(15, 10.0, a, bc, bc, 23);
        skews.push_back(degreeSkew(g));
        insularities.push_back(community::insularity(
            g, reorder::rabbitOrder(g).clustering));
    }
    EXPECT_LT(core::pearson(insularities, skews), -0.6);
}

TEST(PipelineTest, MawiAnomalyReproduced)
{
    // Sec. V-B: high insularity but one giant community and poor
    // normalized run time.
    const Csr g = gen::hubStar(65536, 1, 0.95, 0.05, 29)
                      .permutedSymmetric(
                          Permutation::random(65536, 31));
    const reorder::RabbitResult rabbit = reorder::rabbitOrder(g);
    const double ins = community::insularity(g, rabbit.clustering);
    const community::CommunitySizeStats sizes =
        community::communitySizeStats(rabbit.clustering);
    EXPECT_GT(ins, 0.9);
    EXPECT_GT(sizes.maxSizeFraction, 0.85);
    const double runtime =
        gpu::simulateKernel(g.permutedSymmetric(rabbit.perm),
                            smallSpec())
            .normalizedRuntime;
    EXPECT_GT(runtime, 1.8); // far from ideal despite high insularity
}

TEST(PipelineTest, InsularSubMatrixReachesCompulsoryTraffic)
{
    // Fig. 6: after grouping insular nodes, the insular sub-matrix
    // achieves ~compulsory traffic.
    const Csr g =
        gen::temporalInteraction(65536, 512, 8.0, 0.03, 120.0, 37)
            .permutedSymmetric(Permutation::random(65536, 41));
    const reorder::RabbitPlusResult rpp = reorder::rabbitPlusOrder(g);
    const Csr masked = g.filtered([&rpp](Index r, Index c) {
        return rpp.insular[static_cast<std::size_t>(r)] ||
               rpp.insular[static_cast<std::size_t>(c)];
    });
    const gpu::SimReport report = gpu::simulateKernel(
        masked.permutedSymmetric(rpp.perm), smallSpec());
    EXPECT_LT(report.normalizedTraffic, 1.15);
}

TEST(PipelineTest, BeladyGapIsSmallForGoodOrderings)
{
    // Fig. 8: the LRU-vs-OPT gap shrinks once the ordering is good.
    const Csr g = bigCommunityGraph();
    const Permutation rabbit =
        reorder::computeOrdering(reorder::Technique::Rabbit, g);
    const Csr ordered = g.permutedSymmetric(rabbit);
    gpu::SimOptions lru_opt, opt_opt;
    opt_opt.useBelady = true;
    const auto lru =
        gpu::simulateKernel(ordered, smallSpec(), lru_opt);
    const auto opt =
        gpu::simulateKernel(ordered, smallSpec(), opt_opt);
    EXPECT_LE(opt.trafficBytes, lru.trafficBytes);
    EXPECT_LT(static_cast<double>(lru.trafficBytes) /
                  static_cast<double>(opt.trafficBytes),
              1.5);
}

TEST(PipelineTest, DeadLineFractionImprovesWithReordering)
{
    // Table III: better orderings waste less cache capacity.
    const Csr g = bigCommunityGraph();
    const gpu::GpuSpec spec = smallSpec();
    const auto random = gpu::simulateKernel(
        g.permutedSymmetric(Permutation::random(g.numRows(), 43)),
        spec);
    const auto rabbit = gpu::simulateKernel(
        g.permutedSymmetric(reorder::computeOrdering(
            reorder::Technique::Rabbit, g)),
        spec);
    EXPECT_LT(rabbit.deadLineFraction, random.deadLineFraction);
}

} // namespace
} // namespace slo
