/** @file Unit tests for the CSR container and its transformations. */

#include <gtest/gtest.h>

#include "matrix/csr.hpp"

namespace slo
{
namespace
{

/** 3x3 example:  [10 0 20; 0 30 0; 40 50 0] */
Csr
sample3x3()
{
    return Csr(3, 3, {0, 2, 3, 5}, {0, 2, 1, 0, 1},
               {10.f, 20.f, 30.f, 40.f, 50.f});
}

TEST(CsrTest, ConstructFromRawArrays)
{
    const Csr m = sample3x3();
    EXPECT_EQ(m.numRows(), 3);
    EXPECT_EQ(m.numCols(), 3);
    EXPECT_EQ(m.numNonZeros(), 5);
    EXPECT_TRUE(m.isSquare());
    EXPECT_EQ(m.degree(0), 2);
    EXPECT_EQ(m.degree(1), 1);
    EXPECT_EQ(m.degree(2), 2);
}

TEST(CsrTest, RowSpansExposeEntries)
{
    const Csr m = sample3x3();
    auto idx = m.rowIndices(2);
    auto val = m.rowValues(2);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 1);
    EXPECT_FLOAT_EQ(val[0], 40.f);
    EXPECT_FLOAT_EQ(val[1], 50.f);
}

TEST(CsrTest, ValidationRejectsBadOffsets)
{
    EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.f}),
                 std::invalid_argument); // offsets too short
    EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.f, 1.f}),
                 std::invalid_argument); // non-monotone
    EXPECT_THROW(Csr(2, 2, {1, 1, 2}, {0, 1}, {1.f, 1.f}),
                 std::invalid_argument); // first offset not 0
    EXPECT_THROW(Csr(2, 2, {0, 1, 1}, {0, 1}, {1.f, 1.f}),
                 std::invalid_argument); // last offset != nnz
}

TEST(CsrTest, ValidationRejectsBadColumns)
{
    EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 2}, {1.f, 1.f}),
                 std::invalid_argument);
    EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, -1}, {1.f, 1.f}),
                 std::invalid_argument);
}

TEST(CsrTest, ValidationRejectsValueLengthMismatch)
{
    EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 1}, {1.f}),
                 std::invalid_argument);
}

TEST(CsrTest, FromCooSortsAndBuilds)
{
    Coo coo(3, 3);
    coo.add(2, 1, 50.f);
    coo.add(0, 2, 20.f);
    coo.add(2, 0, 40.f);
    coo.add(0, 0, 10.f);
    coo.add(1, 1, 30.f);
    EXPECT_EQ(Csr::fromCoo(coo), sample3x3());
}

TEST(CsrTest, FromCooSumsDuplicates)
{
    Coo coo(2, 2);
    coo.add(0, 1, 1.f);
    coo.add(0, 1, 2.f);
    coo.add(1, 0, 3.f);
    const Csr m = Csr::fromCoo(coo, DuplicatePolicy::Sum);
    EXPECT_EQ(m.numNonZeros(), 2);
    EXPECT_FLOAT_EQ(m.rowValues(0)[0], 3.f);
}

TEST(CsrTest, FromCooKeepsDuplicatesWhenAsked)
{
    Coo coo(2, 2);
    coo.add(0, 1, 1.f);
    coo.add(0, 1, 2.f);
    const Csr m = Csr::fromCoo(coo, DuplicatePolicy::Keep);
    EXPECT_EQ(m.numNonZeros(), 2);
}

TEST(CsrTest, FromCooHandlesEmptyRows)
{
    Coo coo(4, 4);
    coo.add(1, 2, 1.f);
    const Csr m = Csr::fromCoo(coo);
    EXPECT_EQ(m.degree(0), 0);
    EXPECT_EQ(m.degree(1), 1);
    EXPECT_EQ(m.degree(2), 0);
    EXPECT_EQ(m.degree(3), 0);
}

TEST(CsrTest, TransposeRoundTrip)
{
    const Csr m = sample3x3();
    const Csr t = m.transposed();
    EXPECT_EQ(t.numRows(), 3);
    EXPECT_TRUE(t.hasEntry(0, 2));  // from A(2,0)
    EXPECT_TRUE(t.hasEntry(1, 2));  // from A(2,1)
    EXPECT_TRUE(t.hasEntry(2, 0));  // from A(0,2)
    EXPECT_FALSE(t.hasEntry(0, 1)); // A(1,0) does not exist
    EXPECT_EQ(t.transposed(), m);
}

TEST(CsrTest, TransposePreservesValues)
{
    const Csr t = sample3x3().transposed();
    // (2,0)=40 becomes (0,2)=40.
    auto idx = t.rowIndices(0);
    auto val = t.rowValues(0);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[1], 2);
    EXPECT_FLOAT_EQ(val[1], 40.f);
}

TEST(CsrTest, SymmetrizedUnionsPattern)
{
    const Csr m = sample3x3();
    EXPECT_FALSE(m.isSymmetricPattern());
    const Csr s = m.symmetrized();
    EXPECT_TRUE(s.isSymmetricPattern());
    // (0,2) in A and (2,0) in A: both present; (1,2) added from (2,1).
    EXPECT_TRUE(s.hasEntry(1, 2));
    EXPECT_TRUE(s.hasEntry(2, 1));
    EXPECT_EQ(s.numNonZeros(), 6); // 5 entries of A plus (1,2) from A^T
}

TEST(CsrTest, SymmetrizedKeepsOriginalValues)
{
    const Csr s = sample3x3().symmetrized();
    // A(0,2)=20 and A(2,0)=40 must keep their own values.
    EXPECT_FLOAT_EQ(s.rowValues(0)[s.rowIndices(0).size() - 1], 20.f);
}

TEST(CsrTest, PermutedSymmetricRelabelsRowsAndCols)
{
    const Csr m = sample3x3();
    // perm: 0->2, 1->0, 2->1
    const Csr p = m.permutedSymmetric(Permutation({2, 0, 1}));
    EXPECT_EQ(p.numNonZeros(), m.numNonZeros());
    // A(0,0)=10 -> p(2,2); A(2,1)=50 -> p(1,0)
    EXPECT_TRUE(p.hasEntry(2, 2));
    EXPECT_TRUE(p.hasEntry(1, 0));
    auto idx = p.rowIndices(1);
    auto val = p.rowValues(1);
    for (std::size_t i = 0; i < idx.size(); ++i) {
        if (idx[i] == 0) {
            EXPECT_FLOAT_EQ(val[i], 50.f);
        }
    }
}

TEST(CsrTest, PermuteByIdentityIsNoop)
{
    const Csr m = sample3x3();
    EXPECT_EQ(m.permutedSymmetric(Permutation::identity(3)), m);
}

TEST(CsrTest, PermuteThenInverseRoundTrips)
{
    const Csr m = sample3x3();
    const Permutation perm({2, 0, 1});
    EXPECT_EQ(m.permutedSymmetric(perm).permutedSymmetric(
                  perm.inverse()),
              m);
}

TEST(CsrTest, PermutedRejectsSizeMismatch)
{
    EXPECT_THROW(sample3x3().permutedSymmetric(Permutation::identity(2)),
                 std::invalid_argument);
}

TEST(CsrTest, ToCooRoundTrips)
{
    const Csr m = sample3x3();
    EXPECT_EQ(Csr::fromCoo(m.toCoo(), DuplicatePolicy::Keep), m);
}

TEST(CsrTest, FilteredKeepsSelectedEntries)
{
    const Csr m = sample3x3();
    const Csr diag_only =
        m.filtered([](Index r, Index c) { return r == c; });
    EXPECT_EQ(diag_only.numNonZeros(), 2); // (0,0) and (1,1)
    EXPECT_EQ(diag_only.numRows(), 3);
    EXPECT_TRUE(diag_only.hasEntry(0, 0));
    EXPECT_TRUE(diag_only.hasEntry(1, 1));
}

TEST(CsrTest, AverageDegree)
{
    EXPECT_DOUBLE_EQ(sample3x3().averageDegree(), 5.0 / 3.0);
    EXPECT_DOUBLE_EQ(Csr().averageDegree(), 0.0);
}

TEST(CsrTest, SortRowsNormalizesOrder)
{
    Csr m(2, 3, {0, 3, 3}, {2, 0, 1}, {3.f, 1.f, 2.f});
    EXPECT_FALSE(m.rowsSorted());
    m.sortRows();
    EXPECT_TRUE(m.rowsSorted());
    EXPECT_EQ(m.rowIndices(0)[0], 0);
    EXPECT_FLOAT_EQ(m.rowValues(0)[0], 1.f);
}

TEST(CsrTest, EmptyMatrixBehaves)
{
    const Csr m;
    EXPECT_EQ(m.numRows(), 0);
    EXPECT_EQ(m.numNonZeros(), 0);
    EXPECT_TRUE(m.rowsSorted());
}

} // namespace
} // namespace slo
