/** @file Tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "matrix/rng.hpp"

namespace slo
{
namespace
{

TEST(RngTest, DeterministicInSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(123), c2(124);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double total = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        total += u;
    }
    EXPECT_NEAR(total / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowStaysInBound)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues)
{
    Rng rng(9);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[static_cast<std::size_t>(rng.below(8))];
    for (int count : counts)
        EXPECT_GT(count, 800); // each residue within ~20% of uniform
}

TEST(RngTest, BelowZeroReturnsZero)
{
    Rng rng(10);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(RngTest, BetweenIsInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.between(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, SplitMixAdvancesState)
{
    std::uint64_t state = 42;
    const auto a = splitmix64(state);
    const auto b = splitmix64(state);
    EXPECT_NE(a, b);
    EXPECT_NE(state, 42u);
}

} // namespace
} // namespace slo
