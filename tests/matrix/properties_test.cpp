/** @file Tests for structural property metrics. */

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"

namespace slo
{
namespace
{

Csr
pathGraph(Index n)
{
    Coo coo(n, n);
    for (Index i = 0; i + 1 < n; ++i)
        coo.addSymmetric(i, i + 1);
    return Csr::fromCoo(coo);
}

TEST(PropertiesTest, DegreeStatsOnPath)
{
    const DegreeStats stats = degreeStats(pathGraph(10));
    EXPECT_EQ(stats.minDegree, 1);
    EXPECT_EQ(stats.maxDegree, 2);
    EXPECT_DOUBLE_EQ(stats.avgDegree, 18.0 / 10.0);
    EXPECT_DOUBLE_EQ(stats.medianDegree, 2.0);
}

TEST(PropertiesTest, DegreeStatsEmptyMatrix)
{
    const DegreeStats stats = degreeStats(Csr());
    EXPECT_EQ(stats.minDegree, 0);
    EXPECT_EQ(stats.maxDegree, 0);
}

TEST(PropertiesTest, InAndOutDegreesOnAsymmetricMatrix)
{
    // 0->1, 0->2, 1->2
    Coo coo(3, 3);
    coo.add(0, 1);
    coo.add(0, 2);
    coo.add(1, 2);
    const Csr m = Csr::fromCoo(coo);
    EXPECT_EQ(outDegrees(m), (std::vector<Index>{2, 1, 0}));
    EXPECT_EQ(inDegrees(m), (std::vector<Index>{0, 1, 2}));
}

TEST(PropertiesTest, SkewOfStarIsMaximal)
{
    // One hub connected to everyone: top 10% of columns cover all
    // tail->hub entries plus their own.
    const Csr m = gen::hubStar(1000, 1, 1.0, 0.0, 1);
    EXPECT_GT(degreeSkew(m), 0.5);
}

TEST(PropertiesTest, SkewOfRegularGraphIsNearTopFraction)
{
    const Csr m = pathGraph(1000);
    // Nearly-uniform degrees: top 10% hold about 10% of entries.
    EXPECT_NEAR(degreeSkew(m), 0.1, 0.02);
}

TEST(PropertiesTest, SkewValidatesFraction)
{
    EXPECT_THROW(degreeSkew(pathGraph(10), 0.0), std::invalid_argument);
    EXPECT_THROW(degreeSkew(pathGraph(10), 1.5), std::invalid_argument);
}

TEST(PropertiesTest, BandwidthOfPathIsOne)
{
    EXPECT_EQ(matrixBandwidth(pathGraph(16)), 1);
    EXPECT_DOUBLE_EQ(averageBandwidth(pathGraph(16)), 1.0);
}

TEST(PropertiesTest, BandwidthDetectsFarEntries)
{
    Coo coo(100, 100);
    coo.addSymmetric(0, 99);
    EXPECT_EQ(matrixBandwidth(Csr::fromCoo(coo)), 99);
}

TEST(PropertiesTest, EmptyRowCount)
{
    Coo coo(5, 5);
    coo.add(1, 2);
    coo.add(3, 3);
    EXPECT_EQ(emptyRowCount(Csr::fromCoo(coo)), 3);
}

TEST(PropertiesTest, DegreeHistogramBuckets)
{
    // degrees: 0,1,2,3,4 -> buckets 0,0,1,1,2
    Coo coo(5, 5);
    for (Index c = 0; c < 1; ++c) coo.add(1, c);
    for (Index c = 0; c < 2; ++c) coo.add(2, c);
    for (Index c = 0; c < 3; ++c) coo.add(3, c);
    for (Index c = 0; c < 4; ++c) coo.add(4, c);
    const auto histogram = degreeHistogramLog2(Csr::fromCoo(coo));
    ASSERT_EQ(histogram.size(), 3u);
    EXPECT_EQ(histogram[0], 2); // degrees 0 and 1
    EXPECT_EQ(histogram[1], 2); // degrees 2 and 3
    EXPECT_EQ(histogram[2], 1); // degree 4
}

TEST(PropertiesTest, ConnectedComponentsCountsIslands)
{
    Coo coo(6, 6);
    coo.addSymmetric(0, 1);
    coo.addSymmetric(2, 3);
    // 4 and 5 isolated.
    EXPECT_EQ(connectedComponents(Csr::fromCoo(coo)), 4);
}

TEST(PropertiesTest, ConnectedComponentsOfGridIsOne)
{
    EXPECT_EQ(connectedComponents(gen::grid2d(16, 16, 0.0, 1)), 1);
}

} // namespace
} // namespace slo
