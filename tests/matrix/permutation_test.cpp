/** @file Unit tests for Permutation. */

#include <gtest/gtest.h>

#include "matrix/permutation.hpp"

namespace slo
{
namespace
{

TEST(PermutationTest, IdentityMapsToSelf)
{
    const Permutation p = Permutation::identity(4);
    EXPECT_EQ(p.size(), 4);
    EXPECT_TRUE(p.isIdentity());
    for (Index i = 0; i < 4; ++i)
        EXPECT_EQ(p.newId(i), i);
}

TEST(PermutationTest, ConstructorValidatesBijection)
{
    EXPECT_NO_THROW(Permutation({1, 0, 2}));
    EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
    EXPECT_THROW(Permutation({0, 3, 1}), std::invalid_argument);
    EXPECT_THROW(Permutation({0, -1, 1}), std::invalid_argument);
}

TEST(PermutationTest, IsPermutationChecks)
{
    EXPECT_TRUE(Permutation::isPermutation({2, 1, 0}));
    EXPECT_FALSE(Permutation::isPermutation({2, 2, 0}));
    EXPECT_TRUE(Permutation::isPermutation({}));
}

TEST(PermutationTest, FromNewToOldInverts)
{
    // order: new 0 <- old 2, new 1 <- old 0, new 2 <- old 1
    const Permutation p = Permutation::fromNewToOld({2, 0, 1});
    EXPECT_EQ(p.newId(2), 0);
    EXPECT_EQ(p.newId(0), 1);
    EXPECT_EQ(p.newId(1), 2);
}

TEST(PermutationTest, NewToOldRoundTrips)
{
    const std::vector<Index> order = {3, 1, 0, 2};
    EXPECT_EQ(Permutation::fromNewToOld(order).newToOld(), order);
}

TEST(PermutationTest, InverseComposesToIdentity)
{
    const Permutation p = Permutation::random(64, 7);
    EXPECT_TRUE(p.then(p.inverse()).isIdentity());
    EXPECT_TRUE(p.inverse().then(p).isIdentity());
}

TEST(PermutationTest, ThenComposesInOrder)
{
    const Permutation a({1, 2, 0}); // 0->1,1->2,2->0
    const Permutation b({0, 2, 1}); // 1->2, 2->1
    const Permutation c = a.then(b);
    EXPECT_EQ(c.newId(0), 2); // a:0->1, b:1->2
    EXPECT_EQ(c.newId(1), 1);
    EXPECT_EQ(c.newId(2), 0);
}

TEST(PermutationTest, ThenRejectsSizeMismatch)
{
    EXPECT_THROW(
        Permutation::identity(2).then(Permutation::identity(3)),
        std::invalid_argument);
}

TEST(PermutationTest, RandomIsDeterministicInSeed)
{
    const Permutation a = Permutation::random(100, 42);
    const Permutation b = Permutation::random(100, 42);
    const Permutation c = Permutation::random(100, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(PermutationTest, RandomIsAPermutation)
{
    const Permutation p = Permutation::random(1000, 5);
    EXPECT_TRUE(Permutation::isPermutation(p.newIds()));
    EXPECT_FALSE(p.isIdentity());
}

TEST(PermutationTest, EmptyPermutation)
{
    const Permutation p;
    EXPECT_EQ(p.size(), 0);
    EXPECT_TRUE(p.isIdentity());
}

} // namespace
} // namespace slo
