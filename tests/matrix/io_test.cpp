/** @file Tests for MatrixMarket and binary CSR IO. */

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "matrix/binary_io.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"

namespace slo
{
namespace
{

class IoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        const auto dir = std::filesystem::temp_directory_path() /
                         "slo-io-test";
        std::filesystem::create_directories(dir);
        const auto path = dir / name;
        paths_.push_back(path);
        return path.string();
    }

    void
    TearDown() override
    {
        for (const auto &path : paths_)
            std::filesystem::remove(path);
    }

    std::vector<std::filesystem::path> paths_;
};

TEST_F(IoTest, ReadsGeneralRealMatrixMarket)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 3 3\n"
        "1 1 10.0\n"
        "2 3 -2.5\n"
        "3 1 4\n");
    const Coo coo = io::readMatrixMarket(in);
    EXPECT_EQ(coo.numRows(), 3);
    EXPECT_EQ(coo.numEntries(), 3);
    EXPECT_EQ(coo.at(1), (Triplet{1, 2, -2.5f}));
}

TEST_F(IoTest, ReadsSymmetricMatrixMarketMirrored)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 1.5\n"
        "3 3 2.0\n");
    const Coo coo = io::readMatrixMarket(in);
    // Off-diagonal mirrored, diagonal not.
    EXPECT_EQ(coo.numEntries(), 3);
    EXPECT_EQ(coo.at(0), (Triplet{1, 0, 1.5f}));
    EXPECT_EQ(coo.at(1), (Triplet{0, 1, 1.5f}));
}

TEST_F(IoTest, ReadsPatternMatrixMarket)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "1 2\n");
    const Coo coo = io::readMatrixMarket(in);
    EXPECT_FLOAT_EQ(coo.at(0).val, 1.0f);
}

TEST_F(IoTest, RejectsBadBanner)
{
    std::istringstream in("%%NotMatrixMarket x y z w\n1 1 0\n");
    EXPECT_THROW(io::readMatrixMarket(in), std::invalid_argument);
}

TEST_F(IoTest, RejectsArrayFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(io::readMatrixMarket(in), std::invalid_argument);
}

TEST_F(IoTest, RejectsOutOfBoundsEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(io::readMatrixMarket(in), std::invalid_argument);
}

TEST_F(IoTest, RejectsTruncatedEntryList)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(io::readMatrixMarket(in), std::invalid_argument);
}

TEST_F(IoTest, MatrixMarketRoundTripsThroughFile)
{
    const Csr original = gen::erdosRenyi(200, 5.0, 17);
    const std::string path = tempPath("roundtrip.mtx");
    io::writeMatrixMarketFile(path, original);
    const Csr loaded = io::readCsrFromMatrixMarketFile(path);
    EXPECT_EQ(loaded.numRows(), original.numRows());
    EXPECT_EQ(loaded.rowOffsets(), original.rowOffsets());
    EXPECT_EQ(loaded.colIndices(), original.colIndices());
    // Values go through decimal text; compare loosely.
    for (std::size_t i = 0; i < original.values().size(); ++i)
        EXPECT_NEAR(loaded.values()[i], original.values()[i], 1e-4f);
}

TEST_F(IoTest, ReadMissingFileThrows)
{
    EXPECT_THROW(io::readMatrixMarketFile("/nonexistent/file.mtx"),
                 std::invalid_argument);
}

TEST_F(IoTest, BinaryRoundTripIsExact)
{
    const Csr original = gen::rmatSocial(9, 8.0, 23);
    const std::string path = tempPath("roundtrip.csr");
    io::writeCsrBinaryFile(path, original);
    EXPECT_EQ(io::readCsrBinaryFile(path), original);
}

TEST_F(IoTest, BinaryRejectsBadMagic)
{
    std::istringstream in("GARBAGEDATA");
    EXPECT_THROW(io::readCsrBinary(in), std::invalid_argument);
}

TEST_F(IoTest, BinaryRejectsTruncatedStream)
{
    const Csr original = gen::erdosRenyi(64, 4.0, 3);
    std::ostringstream out;
    io::writeCsrBinary(out, original);
    const std::string full = out.str();
    std::istringstream in(full.substr(0, full.size() / 2));
    EXPECT_THROW(io::readCsrBinary(in), std::invalid_argument);
}

TEST_F(IoTest, BinaryMissingFileThrows)
{
    EXPECT_THROW(io::readCsrBinaryFile("/nonexistent/file.csr"),
                 std::invalid_argument);
}

TEST_F(IoTest, ReadsEdgeListWithCommentsAndWeights)
{
    std::istringstream in(
        "# SNAP-style comment\n"
        "% Konect-style comment\n"
        "0 3\n"
        "3 1 2.5\n"
        "\n"
        "2 2\n");
    const Coo coo = io::readEdgeList(in);
    EXPECT_EQ(coo.numRows(), 4);
    EXPECT_EQ(coo.numEntries(), 3);
    EXPECT_EQ(coo.at(0), (Triplet{0, 3, 1.0f}));
    EXPECT_EQ(coo.at(1), (Triplet{3, 1, 2.5f}));
    EXPECT_EQ(coo.at(2), (Triplet{2, 2, 1.0f}));
}

TEST_F(IoTest, EdgeListRejectsMalformedLines)
{
    std::istringstream in("0 1\nnot numbers\n");
    EXPECT_THROW(io::readEdgeList(in), std::invalid_argument);
}

TEST_F(IoTest, EdgeListRejectsNegativeIds)
{
    std::istringstream in("0 -1\n");
    EXPECT_THROW(io::readEdgeList(in), std::invalid_argument);
}

TEST_F(IoTest, EmptyEdgeListGivesEmptyMatrix)
{
    std::istringstream in("# nothing\n");
    const Coo coo = io::readEdgeList(in);
    EXPECT_EQ(coo.numRows(), 0);
    EXPECT_EQ(coo.numEntries(), 0);
}

TEST_F(IoTest, EdgeListMissingFileThrows)
{
    EXPECT_THROW(io::readEdgeListFile("/nonexistent/file.txt"),
                 std::invalid_argument);
}

} // namespace
} // namespace slo
