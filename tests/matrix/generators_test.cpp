/**
 * @file Tests for the synthetic generators, including parameterized
 * invariant sweeps across every family.
 */

#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"

namespace slo
{
namespace
{

// ---- per-family behaviour -------------------------------------------

TEST(GeneratorsTest, ErdosRenyiHitsTargetDegree)
{
    const Csr m = gen::erdosRenyi(4096, 8.0, 1);
    EXPECT_EQ(m.numRows(), 4096);
    // Symmetrized duplicates/self-loops trim a few percent.
    EXPECT_NEAR(m.averageDegree(), 8.0, 1.0);
}

TEST(GeneratorsTest, ErdosRenyiHasNoSkew)
{
    const Csr m = gen::erdosRenyi(8192, 12.0, 2);
    // Uniform degrees: top 10% of columns hold barely more than 10%.
    EXPECT_LT(degreeSkew(m), 0.2);
}

TEST(GeneratorsTest, RmatIsSkewed)
{
    const Csr m = gen::rmatSocial(13, 16.0, 3);
    EXPECT_EQ(m.numRows(), 8192);
    EXPECT_GT(degreeSkew(m), 0.35);
}

TEST(GeneratorsTest, RmatSkewGrowsWithParameterImbalance)
{
    const double mild =
        degreeSkew(gen::rmat(13, 16.0, 0.45, 0.22, 0.22, 4));
    const double strong =
        degreeSkew(gen::rmat(13, 16.0, 0.65, 0.15, 0.15, 4));
    EXPECT_GT(strong, mild);
}

TEST(GeneratorsTest, PlantedPartitionConcentratesWithinBlocks)
{
    const Index n = 4096;
    const Index comms = 16;
    const Csr m = gen::plantedPartition(n, comms, 10.0, 1.0, 5);
    const Index block = n / comms;
    Offset intra = 0;
    for (Index r = 0; r < n; ++r) {
        for (Index c : m.rowIndices(r)) {
            if (r / block == c / block)
                ++intra;
        }
    }
    const double frac = static_cast<double>(intra) /
                        static_cast<double>(m.numNonZeros());
    EXPECT_GT(frac, 0.85); // 10:1 intra:inter
}

TEST(GeneratorsTest, HierarchicalCommunityIsDenserInnermost)
{
    const Csr m = gen::hierarchicalCommunity(4096, 8, 3, 12.0, 0.2, 6);
    // With decay .2, ~80% of edges live inside innermost blocks of
    // size n/64 = 64.
    const Index inner = 4096 / 64;
    Offset intra = 0;
    for (Index r = 0; r < m.numRows(); ++r) {
        for (Index c : m.rowIndices(r)) {
            if (r / inner == c / inner)
                ++intra;
        }
    }
    EXPECT_GT(static_cast<double>(intra) /
                  static_cast<double>(m.numNonZeros()),
              0.6);
}

TEST(GeneratorsTest, BarabasiAlbertHasHubs)
{
    const Csr m = gen::barabasiAlbert(8192, 4, 7);
    const DegreeStats stats = degreeStats(m);
    EXPECT_GT(stats.maxDegree, 20 * static_cast<Index>(stats.avgDegree));
}

TEST(GeneratorsTest, Grid2dMatchesLatticeStructure)
{
    const Csr m = gen::grid2d(32, 16, 0.0, 8);
    EXPECT_EQ(m.numRows(), 512);
    // Interior nodes have degree 4; nnz = 2*(2*w*h - w - h).
    EXPECT_EQ(m.numNonZeros(), 2 * (2 * 32 * 16 - 32 - 16));
    const DegreeStats stats = degreeStats(m);
    EXPECT_EQ(stats.maxDegree, 4);
    EXPECT_EQ(stats.minDegree, 2);
}

TEST(GeneratorsTest, Grid2dShortcutsAddEdges)
{
    const Offset base = gen::grid2d(64, 64, 0.0, 9).numNonZeros();
    const Offset with = gen::grid2d(64, 64, 0.5, 9).numNonZeros();
    EXPECT_GT(with, base);
}

TEST(GeneratorsTest, Stencil7HasAtMostSixNeighbours)
{
    const Csr m = gen::stencil3d(8, 8, 8, 7, 10);
    EXPECT_EQ(m.numRows(), 512);
    EXPECT_EQ(degreeStats(m).maxDegree, 6);
    // Interior 6^3 nodes all have 6 neighbours.
    EXPECT_EQ(degreeStats(m).minDegree, 3);
}

TEST(GeneratorsTest, Stencil27HasAtMostTwentySixNeighbours)
{
    const Csr m = gen::stencil3d(6, 6, 6, 27, 10);
    EXPECT_EQ(degreeStats(m).maxDegree, 26);
}

TEST(GeneratorsTest, StencilRejectsBadPointCount)
{
    EXPECT_THROW(gen::stencil3d(4, 4, 4, 9, 1), std::invalid_argument);
}

TEST(GeneratorsTest, BandedStaysInBand)
{
    const Csr m = gen::banded(1024, 16, 0.3, 11);
    EXPECT_LE(matrixBandwidth(m), 16);
    EXPECT_GT(m.numNonZeros(), 0);
}

TEST(GeneratorsTest, ChainHasTinyDegreeAndOneComponent)
{
    const Csr m = gen::chainWithBranches(4096, 0.05, 12);
    EXPECT_LT(m.averageDegree(), 3.0);
    EXPECT_EQ(connectedComponents(m), 1);
}

TEST(GeneratorsTest, HubStarHasDominantHubs)
{
    const Csr m = gen::hubStar(4096, 2, 0.8, 1.0, 13);
    const auto degrees = outDegrees(m);
    // The two hubs (ids 0/1) dominate.
    EXPECT_GT(degrees[0], 2000);
    EXPECT_GT(degrees[1], 2000);
    EXPECT_GT(degreeSkew(m), 0.4);
}

TEST(GeneratorsTest, TemporalInteractionMixesCommunitiesAndHubs)
{
    const Csr m = gen::temporalInteraction(4096, 64, 8.0, 0.02, 60.0, 14);
    EXPECT_GT(degreeStats(m).maxDegree, 50);
    EXPECT_GT(m.numNonZeros(), 4096 * 6);
}

TEST(GeneratorsTest, OverlayUnionsPatterns)
{
    const Csr a = gen::grid2d(16, 16, 0.0, 1);
    const Csr b = gen::erdosRenyi(256, 4.0, 2);
    const Csr u = gen::overlay(a, b);
    EXPECT_GE(u.numNonZeros(), a.numNonZeros());
    EXPECT_GE(u.numNonZeros(), b.numNonZeros());
    EXPECT_LE(u.numNonZeros(), a.numNonZeros() + b.numNonZeros());
    for (Index r = 0; r < 256; ++r) {
        for (Index c : a.rowIndices(r))
            EXPECT_TRUE(u.hasEntry(r, c));
    }
}

TEST(GeneratorsTest, OverlayRejectsDimensionMismatch)
{
    EXPECT_THROW(gen::overlay(gen::grid2d(4, 4, 0.0, 1),
                              gen::grid2d(5, 4, 0.0, 1)),
                 std::invalid_argument);
}

TEST(GeneratorsTest, WithRandomValuesKeepsPattern)
{
    const Csr a = gen::erdosRenyi(512, 6.0, 3);
    const Csr b = gen::withRandomValues(a, 99);
    EXPECT_EQ(a.rowOffsets(), b.rowOffsets());
    EXPECT_EQ(a.colIndices(), b.colIndices());
    for (Value v : b.values())
        EXPECT_GT(v, 0.0f);
}

// ---- invariants across all families (property sweep) ----------------

struct FamilyCase
{
    std::string name;
    std::function<Csr(std::uint64_t)> build;
};

class GeneratorFamilyTest
    : public ::testing::TestWithParam<FamilyCase>
{
};

TEST_P(GeneratorFamilyTest, PatternIsSymmetricWithoutSelfLoops)
{
    const Csr m = GetParam().build(21);
    EXPECT_TRUE(m.isSymmetricPattern()) << GetParam().name;
    for (Index r = 0; r < m.numRows(); ++r)
        EXPECT_FALSE(m.hasEntry(r, r)) << GetParam().name;
}

TEST_P(GeneratorFamilyTest, RowsAreSortedAndDeduplicated)
{
    const Csr m = GetParam().build(22);
    EXPECT_TRUE(m.rowsSorted());
    for (Index r = 0; r < m.numRows(); ++r) {
        auto idx = m.rowIndices(r);
        for (std::size_t i = 1; i < idx.size(); ++i)
            EXPECT_LT(idx[i - 1], idx[i]);
    }
}

TEST_P(GeneratorFamilyTest, DeterministicInSeed)
{
    EXPECT_EQ(GetParam().build(33), GetParam().build(33));
}

TEST_P(GeneratorFamilyTest, DifferentSeedsDiffer)
{
    // Lattice-exact families ignore randomness only when they take no
    // random decisions; every family here takes at least a value seed.
    EXPECT_NE(GetParam().build(1).values(), GetParam().build(2).values());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorFamilyTest,
    ::testing::Values(
        FamilyCase{"erdosRenyi",
                   [](std::uint64_t s) {
                       return gen::erdosRenyi(700, 7.0, s);
                   }},
        FamilyCase{"rmat",
                   [](std::uint64_t s) {
                       return gen::rmatSocial(10, 9.0, s);
                   }},
        FamilyCase{"planted",
                   [](std::uint64_t s) {
                       return gen::plantedPartition(600, 12, 8.0, 1.0, s);
                   }},
        FamilyCase{"hier",
                   [](std::uint64_t s) {
                       return gen::hierarchicalCommunity(600, 4, 3, 8.0,
                                                         0.3, s);
                   }},
        FamilyCase{"ba",
                   [](std::uint64_t s) {
                       return gen::barabasiAlbert(600, 3, s);
                   }},
        FamilyCase{"grid2d",
                   [](std::uint64_t s) {
                       return gen::grid2d(24, 25, 0.05, s);
                   }},
        FamilyCase{"stencil7",
                   [](std::uint64_t s) {
                       return gen::stencil3d(8, 9, 10, 7, s);
                   }},
        FamilyCase{"stencil27",
                   [](std::uint64_t s) {
                       return gen::stencil3d(8, 8, 8, 27, s);
                   }},
        FamilyCase{"banded",
                   [](std::uint64_t s) {
                       return gen::banded(600, 12, 0.4, s);
                   }},
        FamilyCase{"chain",
                   [](std::uint64_t s) {
                       return gen::chainWithBranches(600, 0.1, s);
                   }},
        FamilyCase{"hubStar",
                   [](std::uint64_t s) {
                       return gen::hubStar(600, 2, 0.7, 1.5, s);
                   }},
        FamilyCase{"temporal",
                   [](std::uint64_t s) {
                       return gen::temporalInteraction(600, 12, 6.0,
                                                       0.02, 30.0, s);
                   }}),
    [](const ::testing::TestParamInfo<FamilyCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace slo
