/** @file Unit tests for the COO container. */

#include <gtest/gtest.h>

#include "matrix/coo.hpp"

namespace slo
{
namespace
{

TEST(CooTest, DefaultConstructedIsEmpty)
{
    Coo coo;
    EXPECT_EQ(coo.numRows(), 0);
    EXPECT_EQ(coo.numCols(), 0);
    EXPECT_EQ(coo.numEntries(), 0);
    EXPECT_TRUE(coo.empty());
}

TEST(CooTest, AddStoresTriplet)
{
    Coo coo(3, 4);
    coo.add(1, 2, 5.0f);
    ASSERT_EQ(coo.numEntries(), 1);
    EXPECT_EQ(coo.at(0), (Triplet{1, 2, 5.0f}));
}

TEST(CooTest, AddDefaultsValueToOne)
{
    Coo coo(2, 2);
    coo.add(0, 1);
    EXPECT_FLOAT_EQ(coo.at(0).val, 1.0f);
}

TEST(CooTest, AddRejectsOutOfBounds)
{
    Coo coo(2, 2);
    EXPECT_THROW(coo.add(2, 0), std::invalid_argument);
    EXPECT_THROW(coo.add(0, 2), std::invalid_argument);
    EXPECT_THROW(coo.add(-1, 0), std::invalid_argument);
}

TEST(CooTest, NegativeDimensionsRejected)
{
    EXPECT_THROW(Coo(-1, 2), std::invalid_argument);
}

TEST(CooTest, AddSymmetricMirrorsOffDiagonal)
{
    Coo coo(3, 3);
    coo.addSymmetric(0, 2, 3.0f);
    ASSERT_EQ(coo.numEntries(), 2);
    EXPECT_EQ(coo.at(0), (Triplet{0, 2, 3.0f}));
    EXPECT_EQ(coo.at(1), (Triplet{2, 0, 3.0f}));
}

TEST(CooTest, AddSymmetricDiagonalAddedOnce)
{
    Coo coo(3, 3);
    coo.addSymmetric(1, 1, 2.0f);
    EXPECT_EQ(coo.numEntries(), 1);
}

TEST(CooTest, SortRowMajorOrdersEntries)
{
    Coo coo(3, 3);
    coo.add(2, 1);
    coo.add(0, 2);
    coo.add(2, 0);
    coo.add(0, 1);
    EXPECT_FALSE(coo.isRowMajorSorted());
    coo.sortRowMajor();
    EXPECT_TRUE(coo.isRowMajorSorted());
    EXPECT_EQ(coo.at(0).row, 0);
    EXPECT_EQ(coo.at(0).col, 1);
    EXPECT_EQ(coo.at(3).row, 2);
    EXPECT_EQ(coo.at(3).col, 1);
}

TEST(CooTest, SortIsStableForDuplicates)
{
    Coo coo(2, 2);
    coo.add(0, 0, 1.0f);
    coo.add(0, 0, 2.0f);
    coo.sortRowMajor();
    EXPECT_FLOAT_EQ(coo.at(0).val, 1.0f);
    EXPECT_FLOAT_EQ(coo.at(1).val, 2.0f);
}

TEST(CooTest, TransposeInPlaceSwapsCoordinates)
{
    Coo coo(2, 3);
    coo.add(0, 2, 7.0f);
    coo.transposeInPlace();
    EXPECT_EQ(coo.numRows(), 3);
    EXPECT_EQ(coo.numCols(), 2);
    EXPECT_EQ(coo.at(0), (Triplet{2, 0, 7.0f}));
}

TEST(CooTest, AtRejectsOutOfRange)
{
    Coo coo(1, 1);
    EXPECT_THROW(coo.at(0), std::invalid_argument);
}

} // namespace
} // namespace slo
