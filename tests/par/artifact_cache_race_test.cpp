/**
 * @file
 * Concurrency tests for core::artifact_cache: per-key locking must make
 * concurrent threads and concurrent processes build a missing artifact
 * exactly once, and temp+rename stores must never expose a torn file.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/artifact_cache.hpp"
#include "par/par.hpp"

namespace slo::core
{
namespace
{

class ArtifactCacheRaceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-race-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
        ::unsetenv("SLO_NO_CACHE");
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

std::vector<Index>
iotaVec(std::size_t n)
{
    std::vector<Index> v(n);
    std::iota(v.begin(), v.end(), Index{0});
    return v;
}

TEST_F(ArtifactCacheRaceTest, ConcurrentThreadsBuildOnce)
{
    std::atomic<int> builds{0};
    par::ThreadPool pool(4);
    std::vector<std::vector<Index>> results(8);
    par::parallelFor(
        std::size_t{0}, results.size(),
        [&](std::size_t i) {
            results[i] =
                loadOrBuildIndexVector("race-thread-key", [&builds] {
                    builds.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    return iotaVec(512);
                });
        },
        par::ForOptions{1, &pool});
    EXPECT_EQ(builds.load(), 1);
    for (const auto &r : results)
        EXPECT_EQ(r, iotaVec(512));
}

TEST_F(ArtifactCacheRaceTest, CacheKeyLockIsReentrantPerThread)
{
    // loadOrBuild* take the key lock internally; callers that hold an
    // outer lock for multi-artifact coherence (rabbitArtifactsFor) must
    // not deadlock on the nested acquisition.
    const CacheKeyLock outer("reentrant-key");
    {
        const CacheKeyLock inner("reentrant-key");
        storeIndexVector("reentrant-key", iotaVec(16));
    }
    const auto loaded = tryLoadIndexVector("reentrant-key");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, iotaVec(16));
}

TEST_F(ArtifactCacheRaceTest, StoreNeverExposesATornVector)
{
    const std::vector<Index> a(2048, Index{1});
    const std::vector<Index> b(4096, Index{2});
    storeIndexVector("torn-key", a);
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread writer([&] {
        for (int i = 0; i < 100; ++i)
            storeIndexVector("torn-key", i % 2 == 0 ? b : a);
        stop.store(true);
    });
    while (!stop.load()) {
        const auto got = tryLoadIndexVector("torn-key");
        if (!got.has_value() || (*got != a && *got != b))
            torn.fetch_add(1);
    }
    writer.join();
    EXPECT_EQ(torn.load(), 0);
}

/** One spawned racer: its pid and the read end of its stderr pipe. */
struct RacerChild
{
    pid_t pid = -1;
    int stderrFd = -1;
};

/** What a racer wrote to its out-file plus its captured stderr. */
struct RacerResult
{
    int builds = -1;
    int ok = 0;
    int initialMiss = 0;
    std::string stderrText;
};

RacerChild
spawnRacer(const std::filesystem::path &racer, const std::string &key,
           const std::string &out, int hold_ms,
           const std::string &mode = "cache")
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0)
        return {};
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::close(fds[0]);
        ::dup2(fds[1], STDERR_FILENO);
        ::close(fds[1]);
        const std::string hold = std::to_string(hold_ms);
        ::execl(racer.c_str(), racer.c_str(), key.c_str(), "512",
                out.c_str(), hold.c_str(), mode.c_str(), nullptr);
        _exit(127); // exec failed
    }
    ::close(fds[1]);
    return {pid, fds[0]};
}

std::string
drainFd(int fd)
{
    std::string text;
    char buf[4096];
    ssize_t got = 0;
    while ((got = ::read(fd, buf, sizeof(buf))) > 0)
        text.append(buf, static_cast<std::size_t>(got));
    ::close(fd);
    return text;
}

/**
 * Wait for @p child with a deadline instead of blocking forever: poll
 * waitpid(WNOHANG), and past the deadline kill the child so the test
 * fails with its captured stderr rather than hanging until the ctest
 * timeout reaps the whole binary.
 */
bool
reapWithDeadline(const RacerChild &child,
                 std::chrono::milliseconds deadline, int *exit_code)
{
    const auto start = std::chrono::steady_clock::now();
    int status = 0;
    for (;;) {
        const pid_t done = ::waitpid(child.pid, &status, WNOHANG);
        if (done == child.pid) {
            *exit_code =
                WIFEXITED(status) ? WEXITSTATUS(status) : 128;
            return true;
        }
        if (std::chrono::steady_clock::now() - start > deadline) {
            ::kill(child.pid, SIGKILL);
            ::waitpid(child.pid, &status, 0);
            *exit_code = -1;
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

/**
 * Shared body of the two-process build-once tests: `cache` exercises
 * the bare loadOrBuildIndexVector helper, `store` the promoted
 * ArtifactStore::getOrBuild (whose cross-process single-flight runs
 * through the same CacheKeyLock + disk read-through).
 */
void
runTwoProcessRace(const std::filesystem::path &dir,
                  const std::string &mode)
{
    // Locate the racer helper next to this test binary.
    char exe[4096] = {0};
    const ssize_t len =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    ASSERT_GT(len, 0);
    const std::filesystem::path racer =
        std::filesystem::path(exe).parent_path() /
        "artifact_cache_racer";
    ASSERT_TRUE(std::filesystem::exists(racer))
        << "helper not built: " << racer;

    // Retry with a growing lock-hold time until both processes saw the
    // artifact missing at start — only such a run actually exercised
    // the two-process race (a late starter just loads the stored
    // vector). Every attempt, raced or not, must build exactly once.
    bool raced = false;
    for (const int hold_ms : {50, 100, 200, 400, 800}) {
        const std::string key = "race-proc-key-" + mode + "-" +
                                std::to_string(hold_ms);
        const std::string out1 =
            (dir / (key + ".1.out")).string();
        const std::string out2 =
            (dir / (key + ".2.out")).string();
        const RacerChild child1 =
            spawnRacer(racer, key, out1, hold_ms, mode);
        const RacerChild child2 =
            spawnRacer(racer, key, out2, hold_ms, mode);
        ASSERT_GT(child1.pid, 0);
        ASSERT_GT(child2.pid, 0);

        const auto deadline =
            std::chrono::milliseconds(20 * hold_ms + 10000);
        int code1 = -1;
        int code2 = -1;
        const bool done1 =
            reapWithDeadline(child1, deadline, &code1);
        const bool done2 =
            reapWithDeadline(child2, deadline, &code2);
        RacerResult results[2];
        results[0].stderrText = drainFd(child1.stderrFd);
        results[1].stderrText = drainFd(child2.stderrFd);
        ASSERT_TRUE(done1 && done2)
            << "racer timed out after " << deadline.count()
            << " ms\n--- racer 1 stderr ---\n"
            << results[0].stderrText
            << "--- racer 2 stderr ---\n" << results[1].stderrText;
        ASSERT_EQ(code1, 0) << results[0].stderrText;
        ASSERT_EQ(code2, 0) << results[1].stderrText;

        int builds_total = 0;
        int misses = 0;
        const std::string *outs[2] = {&out1, &out2};
        for (int i = 0; i < 2; ++i) {
            std::ifstream in(*outs[i]);
            RacerResult &r = results[i];
            ASSERT_TRUE(in >> r.builds >> r.ok >> r.initialMiss)
                << *outs[i] << "\n" << r.stderrText;
            EXPECT_EQ(r.ok, 1) << r.stderrText;
            builds_total += r.builds;
            misses += r.initialMiss;
        }
        // The flock serializes the two processes: one builds, the
        // other loads the stored artifact after the lock drops.
        ASSERT_EQ(builds_total, 1)
            << results[0].stderrText << results[1].stderrText;
        if (misses == 2) {
            raced = true;
            break;
        }
    }
    EXPECT_TRUE(raced)
        << "no attempt had both processes start before the artifact "
           "existed, even at the longest hold time";
}

TEST_F(ArtifactCacheRaceTest, TwoProcessesBuildOnce)
{
    runTwoProcessRace(dir_, "cache");
}

TEST_F(ArtifactCacheRaceTest, TwoProcessesStoreBuildOnce)
{
    runTwoProcessRace(dir_, "store");
}

} // namespace
} // namespace slo::core
