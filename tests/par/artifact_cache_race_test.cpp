/**
 * @file
 * Concurrency tests for core::artifact_cache: per-key locking must make
 * concurrent threads and concurrent processes build a missing artifact
 * exactly once, and temp+rename stores must never expose a torn file.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/artifact_cache.hpp"
#include "par/par.hpp"

namespace slo::core
{
namespace
{

class ArtifactCacheRaceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("slo-race-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("SLO_CACHE_DIR", dir_.c_str(), 1);
        ::unsetenv("SLO_NO_CACHE");
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

std::vector<Index>
iotaVec(std::size_t n)
{
    std::vector<Index> v(n);
    std::iota(v.begin(), v.end(), Index{0});
    return v;
}

TEST_F(ArtifactCacheRaceTest, ConcurrentThreadsBuildOnce)
{
    std::atomic<int> builds{0};
    par::ThreadPool pool(4);
    std::vector<std::vector<Index>> results(8);
    par::parallelFor(
        std::size_t{0}, results.size(),
        [&](std::size_t i) {
            results[i] =
                loadOrBuildIndexVector("race-thread-key", [&builds] {
                    builds.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    return iotaVec(512);
                });
        },
        par::ForOptions{1, &pool});
    EXPECT_EQ(builds.load(), 1);
    for (const auto &r : results)
        EXPECT_EQ(r, iotaVec(512));
}

TEST_F(ArtifactCacheRaceTest, CacheKeyLockIsReentrantPerThread)
{
    // loadOrBuild* take the key lock internally; callers that hold an
    // outer lock for multi-artifact coherence (rabbitArtifactsFor) must
    // not deadlock on the nested acquisition.
    const CacheKeyLock outer("reentrant-key");
    {
        const CacheKeyLock inner("reentrant-key");
        storeIndexVector("reentrant-key", iotaVec(16));
    }
    const auto loaded = tryLoadIndexVector("reentrant-key");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, iotaVec(16));
}

TEST_F(ArtifactCacheRaceTest, StoreNeverExposesATornVector)
{
    const std::vector<Index> a(2048, Index{1});
    const std::vector<Index> b(4096, Index{2});
    storeIndexVector("torn-key", a);
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread writer([&] {
        for (int i = 0; i < 100; ++i)
            storeIndexVector("torn-key", i % 2 == 0 ? b : a);
        stop.store(true);
    });
    while (!stop.load()) {
        const auto got = tryLoadIndexVector("torn-key");
        if (!got.has_value() || (*got != a && *got != b))
            torn.fetch_add(1);
    }
    writer.join();
    EXPECT_EQ(torn.load(), 0);
}

TEST_F(ArtifactCacheRaceTest, TwoProcessesBuildOnce)
{
    // Locate the racer helper next to this test binary.
    char exe[4096] = {0};
    const ssize_t len =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    ASSERT_GT(len, 0);
    const std::filesystem::path racer =
        std::filesystem::path(exe).parent_path() /
        "artifact_cache_racer";
    ASSERT_TRUE(std::filesystem::exists(racer))
        << "helper not built: " << racer;

    const std::string out1 = (dir_ / "racer1.out").string();
    const std::string out2 = (dir_ / "racer2.out").string();
    const std::string cmd = "'" + racer.string() +
                            "' race-proc-key 512 '" + out1 + "' & '" +
                            racer.string() + "' race-proc-key 512 '" +
                            out2 + "'; wait";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    int builds_total = 0;
    for (const std::string &out : {out1, out2}) {
        std::ifstream in(out);
        int builds = -1;
        int ok = 0;
        ASSERT_TRUE(in >> builds >> ok) << out;
        EXPECT_EQ(ok, 1) << out;
        builds_total += builds;
    }
    // The flock serializes the two processes: one builds, the other
    // loads the stored artifact after the lock is released.
    EXPECT_EQ(builds_total, 1);
}

} // namespace
} // namespace slo::core
