/**
 * @file
 * Helper binary for the artifact-cache two-process race test.
 *
 * Usage: artifact_cache_racer <key> <n> <out-file>
 *
 * Calls core::loadOrBuildIndexVector(<key>) with a deliberately slow
 * build returning [0, n), then writes "<builds> <ok>" to <out-file>.
 * The race test launches two of these on the same key and the same
 * SLO_CACHE_DIR and asserts that exactly one of them built.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.hpp"

int
main(int argc, char **argv)
{
    if (argc != 4)
        return 2;
    const std::string key = argv[1];
    const auto n = static_cast<std::size_t>(std::atoi(argv[2]));
    int builds = 0;
    const std::vector<slo::Index> vec =
        slo::core::loadOrBuildIndexVector(key, [&builds, n] {
            ++builds;
            // Stay inside the build long enough that the sibling
            // process reliably hits the held lock.
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            std::vector<slo::Index> v(n);
            std::iota(v.begin(), v.end(), slo::Index{0});
            return v;
        });
    bool ok = vec.size() == n;
    for (std::size_t i = 0; ok && i < n; ++i)
        ok = vec[i] == static_cast<slo::Index>(i);
    std::ofstream(argv[3]) << builds << ' ' << (ok ? 1 : 0) << '\n';
    return ok ? 0 : 1;
}
