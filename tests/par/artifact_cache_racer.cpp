/**
 * @file
 * Helper binary for the artifact-cache two-process race test.
 *
 * Usage: artifact_cache_racer <key> <n> <out-file> [hold-ms] [mode]
 *
 * Mode `cache` (default) calls core::loadOrBuildIndexVector(<key>);
 * mode `store` routes the same build through an in-memory
 * core::ArtifactStore::getOrBuild, exercising the promoted store's
 * cross-process single-flight (CacheKeyLock + disk read-through)
 * instead of the bare cache helper. Either way the build holds the
 * key lock for <hold-ms> (default 100), returns [0, n), and the
 * process writes "<builds> <ok> <initial-miss>" to <out-file>.
 * <initial-miss> records whether the artifact was absent when this
 * process started — the race test retries with growing hold times
 * until both processes report a miss, i.e. until the run provably
 * exercised the race. Progress goes to stderr so a hung run can be
 * diagnosed from the parent's captured output.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/artifact_cache.hpp"
#include "core/artifact_store.hpp"

int
main(int argc, char **argv)
{
    if (argc < 4 || argc > 6)
        return 2;
    const std::string key = argv[1];
    const auto n = static_cast<std::size_t>(std::atoi(argv[2]));
    const int hold_ms = argc >= 5 ? std::atoi(argv[4]) : 100;
    const std::string mode = argc == 6 ? argv[5] : "cache";
    const bool initial_miss =
        !slo::core::tryLoadIndexVector(key).has_value();
    std::cerr << "[racer " << ::getpid() << "] start key=" << key
              << " mode=" << mode
              << " initial_miss=" << initial_miss << '\n';
    int builds = 0;
    const auto build = [&builds, n, hold_ms] {
        ++builds;
        // Stay inside the build long enough that the sibling
        // process reliably hits the held lock.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(hold_ms));
        std::vector<slo::Index> v(n);
        std::iota(v.begin(), v.end(), slo::Index{0});
        return v;
    };
    std::vector<slo::Index> vec;
    if (mode == "store") {
        slo::core::ArtifactStore store;
        vec = *store.getOrBuild(key, build);
    } else {
        vec = slo::core::loadOrBuildIndexVector(key, build);
    }
    bool ok = vec.size() == n;
    for (std::size_t i = 0; ok && i < n; ++i)
        ok = vec[i] == static_cast<slo::Index>(i);
    std::cerr << "[racer " << ::getpid() << "] done builds=" << builds
              << " ok=" << ok << '\n';
    std::ofstream(argv[3]) << builds << ' ' << (ok ? 1 : 0) << ' '
                           << (initial_miss ? 1 : 0) << '\n';
    return ok ? 0 : 1;
}
