#include "par/par.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace slo::par
{
namespace
{

TEST(ThreadPoolTest, SerialPoolRunsInlineInSubmissionOrder)
{
    ThreadPool pool(1);
    EXPECT_TRUE(pool.serial());
    EXPECT_EQ(pool.numThreads(), 1);
    std::vector<int> order;
    pool.submit([&order] { order.push_back(0); });
    pool.submit([&order] { order.push_back(1); });
    pool.submit([&order] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(-3);
    EXPECT_EQ(pool.numThreads(), 1);
    EXPECT_TRUE(pool.serial());
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_FALSE(pool.serial());
    constexpr int kTasks = 2000;
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i)
        group.run([&ran] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, TaskGroupRethrowsFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
        group.run([&ran, i] {
            ran.fetch_add(1);
            if (i % 8 == 3)
                throw std::runtime_error("task failed");
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // Every task still ran; a throwing task doesn't cancel the rest.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SerialTaskGroupCapturesExceptionsToo)
{
    ThreadPool pool(1);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("inline failure"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmissionDoesNotDeadlock)
{
    // A task that itself fans out and waits must not deadlock even when
    // tasks outnumber workers: waiting threads help run queued tasks.
    ThreadPool pool(2);
    std::atomic<int> inner_ran{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 16; ++i) {
        outer.run([&pool, &inner_ran] {
            TaskGroup inner(pool);
            for (int j = 0; j < 16; ++j)
                inner.run([&inner_ran] { inner_ran.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(inner_ran.load(), 16 * 16);
}

TEST(ThreadPoolTest, WaitHelpsOnlyWithOwnGroupTasks)
{
    // A thread blocked in TaskGroup::wait may hold locks — the
    // artifact cache holds a per-key flock around build(), and build()
    // fans out a nested parallelFor. Helping must therefore be scoped
    // to the waited-on group: picking up an unrelated coarse task
    // could block on a *second* lock while the first is held, which
    // with two processes sharing the cache dir is a hold-and-wait
    // deadlock flock cannot detect. Park every worker, then check that
    // a waiter drains only its own group and leaves foreign tasks
    // untouched.
    ThreadPool pool(2);
    std::atomic<int> parked{0};
    std::atomic<bool> release{false};
    TaskGroup blockers(pool);
    for (int i = 0; i < 2; ++i) {
        blockers.run([&parked, &release] {
            parked.fetch_add(1);
            while (!release.load())
                std::this_thread::yield();
        });
    }
    while (parked.load() < 2)
        std::this_thread::yield();

    std::atomic<int> unrelated_ran{0};
    TaskGroup unrelated(pool);
    for (int i = 0; i < 32; ++i)
        unrelated.run([&unrelated_ran] { unrelated_ran.fetch_add(1); });

    std::atomic<int> mine_ran{0};
    TaskGroup mine(pool);
    for (int i = 0; i < 32; ++i)
        mine.run([&mine_ran] { mine_ran.fetch_add(1); });
    // Both workers are parked, so the only thread able to make
    // progress here is this one, helping inside wait(). It must run
    // all of its own group and none of the unrelated one.
    mine.wait();
    EXPECT_EQ(mine_ran.load(), 32);
    EXPECT_EQ(unrelated_ran.load(), 0);

    release.store(true);
    blockers.wait();
    unrelated.wait();
    EXPECT_EQ(unrelated_ran.load(), 32);
}

TEST(ParallelForTest, GrainOneCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    parallelFor(
        std::size_t{0}, hits.size(),
        [&hits](std::size_t i) { ++hits[i]; },
        ForOptions{1, &pool});
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
}

TEST(ParallelForTest, LargeGrainCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    parallelFor(
        std::size_t{0}, hits.size(),
        [&hits](std::size_t i) { ++hits[i]; },
        ForOptions{100000, &pool}); // larger than the range: one chunk
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
}

TEST(ParallelForTest, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    parallelFor(
        std::size_t{5}, std::size_t{5},
        [&ran](std::size_t) { ran = true; }, ForOptions{0, &pool});
    EXPECT_FALSE(ran);
}

TEST(ParallelForTest, BodyExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(
                     std::size_t{0}, std::size_t{100},
                     [](std::size_t i) {
                         if (i == 37)
                             throw std::runtime_error("bad index");
                     },
                     ForOptions{1, &pool}),
                 std::runtime_error);
}

TEST(ParallelReduceTest, MatchesSerialSumAtEveryThreadCount)
{
    const std::size_t n = 10000;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = static_cast<double>(i % 97) * 0.125;
    const double expected =
        std::accumulate(values.begin(), values.end(), 0.0);
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        const double got = parallelReduce(
            std::size_t{0}, n, /*grain=*/128, 0.0,
            [&values](std::size_t lo, std::size_t hi) {
                double s = 0.0;
                for (std::size_t i = lo; i < hi; ++i)
                    s += values[i];
                return s;
            },
            [](double a, double b) { return a + b; }, &pool);
        // Fixed chunk boundaries + in-order fold: bitwise identical.
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(ParallelInvokeTest, RunsAllCallables)
{
    std::atomic<int> mask{0};
    parallelInvoke([&mask] { mask.fetch_or(1); },
                   [&mask] { mask.fetch_or(2); },
                   [&mask] { mask.fetch_or(4); });
    EXPECT_EQ(mask.load(), 7);
}

TEST(ParallelStableSortTest, EqualsStdStableSortWithTies)
{
    // Enough elements to trigger the parallel path (>= 2 * kMinRun)
    // and heavy tie groups to exercise stability.
    const std::size_t n = 20000;
    std::vector<std::pair<int, int>> serial(n);
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = {static_cast<int>((i * 2654435761u) % 16),
                     static_cast<int>(i)};
    auto parallel = serial;
    const auto by_key = [](const std::pair<int, int> &a,
                           const std::pair<int, int> &b) {
        return a.first < b.first;
    };
    std::stable_sort(serial.begin(), serial.end(), by_key);
    for (int threads : {1, 2, 4, 8}) {
        auto copy = parallel;
        ThreadPool pool(threads);
        parallelStableSort(copy.begin(), copy.end(), by_key, &pool);
        EXPECT_EQ(copy, serial) << "threads=" << threads;
    }
}

TEST(ParallelStableSortTest, SmallInputsUseTheSerialPath)
{
    std::vector<int> values = {5, 3, 9, 1, 3, 5, 0};
    auto expected = values;
    std::stable_sort(expected.begin(), expected.end());
    ThreadPool pool(4);
    parallelStableSort(values.begin(), values.end(), std::less<>(),
                       &pool);
    EXPECT_EQ(values, expected);
}

TEST(ThreadPoolTest, StatsJsonCountsWorkAndBoundsUtilization)
{
    ThreadPool pool(4);
    constexpr int kTasks = 500;
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i)
        group.run([&ran] { ran.fetch_add(1); });
    group.wait();
    ASSERT_EQ(ran.load(), kTasks);

    const obs::Json stats = pool.statsJson();
    EXPECT_EQ(stats.at("threads").asUint(), 4u);
    EXPECT_FALSE(stats.at("serial").asBool());
    // The waiting thread may help, so workers run *at most* kTasks.
    EXPECT_LE(stats.at("tasks_run").asUint(),
              static_cast<std::uint64_t>(kTasks));
    EXPECT_GE(stats.at("steals").asUint(), 0u);
    const double utilization = stats.at("utilization").asDouble();
    EXPECT_GE(utilization, 0.0);
    EXPECT_LE(utilization, 1.0);

    const obs::Json &workers = stats.at("workers");
    ASSERT_TRUE(workers.isArray());
    ASSERT_EQ(workers.size(), 4u);
    std::uint64_t per_worker_runs = 0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        const obs::Json &w = workers.at(i);
        EXPECT_EQ(w.at("index").asUint(), i);
        per_worker_runs += w.at("runs").asUint();
        EXPECT_GE(w.at("busy_seconds").asDouble(), 0.0);
        EXPECT_GE(w.at("park_seconds").asDouble(), 0.0);
    }
    // Worker-local tallies must agree with the pool-wide total.
    EXPECT_EQ(per_worker_runs, stats.at("tasks_run").asUint());
}

TEST(ThreadPoolTest, SerialPoolStatsReportFullUtilization)
{
    ThreadPool pool(1);
    pool.submit([] {});
    const obs::Json stats = pool.statsJson();
    EXPECT_EQ(stats.at("threads").asUint(), 1u);
    EXPECT_TRUE(stats.at("serial").asBool());
    // Inline execution: no workers, no steals, no parked time.
    EXPECT_EQ(stats.at("steals").asUint(), 0u);
    EXPECT_EQ(stats.at("workers").size(), 0u);
    EXPECT_DOUBLE_EQ(stats.at("utilization").asDouble(), 1.0);
}

TEST(ParallelForTest, StressManySmallBatches)
{
    // Repeatedly spin up small fan-outs to stress submit/steal/wake
    // paths (and give TSan races to find if there are any).
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round) {
        parallelFor(
            std::size_t{0}, std::size_t{64},
            [&total](std::size_t i) {
                total.fetch_add(static_cast<long>(i));
            },
            ForOptions{1, &pool});
    }
    EXPECT_EQ(total.load(), 50L * (63 * 64 / 2));
}

} // namespace
} // namespace slo::par
