/**
 * @file
 * Concurrency tests for the obs layer: metrics and the run manifest
 * must tolerate concurrent pipeline cells, and the sticky context must
 * be per-thread so parallel cells cannot scramble each other's
 * attribution.
 */

#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "par/par.hpp"

namespace slo
{
namespace
{

TEST(ObsConcurrencyTest, CountersSumAcrossThreads)
{
    obs::Counter &c = obs::counter("test.par.counter");
    const std::uint64_t before = c.value();
    par::ThreadPool pool(4);
    par::parallelFor(
        std::size_t{0}, std::size_t{1000},
        [&c](std::size_t) { c.add(); }, par::ForOptions{1, &pool});
    EXPECT_EQ(c.value(), before + 1000);
}

/** "m" + to_string via append: sidesteps a GCC 12 -Wrestrict false
 * positive on operator+(const char *, std::string &&) at -O2. */
std::string
matrixName(std::size_t index)
{
    std::string name("m");
    name += std::to_string(index);
    return name;
}

TEST(ObsConcurrencyTest, RecordPhaseAccumulatesUnderContention)
{
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.reset();
    manifest.begin("obs concurrency test");
    par::ThreadPool pool(4);
    par::parallelFor(
        std::size_t{0}, std::size_t{400},
        [&manifest](std::size_t i) {
            manifest.recordPhase(matrixName(i % 4), "phase", 0.5);
        },
        par::ForOptions{1, &pool});
    const obs::Json doc = manifest.toJson();
    for (int m = 0; m < 4; ++m) {
        const obs::Json &phase =
            doc.at("matrices")
                .at(matrixName(static_cast<std::size_t>(m)))
                .at("phases")
                .at("phase");
        EXPECT_DOUBLE_EQ(phase.asDouble(), 50.0);
    }
    manifest.reset();
}

TEST(ObsConcurrencyTest, AddSimulationKeepsEveryReport)
{
    obs::RunManifest &manifest = obs::RunManifest::instance();
    manifest.reset();
    manifest.begin("obs concurrency test");
    par::ThreadPool pool(4);
    par::parallelFor(
        std::size_t{0}, std::size_t{200},
        [&manifest](std::size_t i) {
            obs::Json report = obs::Json::object();
            report["cell"] = static_cast<std::uint64_t>(i);
            manifest.addSimulation("m", std::move(report));
        },
        par::ForOptions{1, &pool});
    const obs::Json doc = manifest.toJson();
    EXPECT_EQ(doc.at("matrices").at("m").at("simulations").size(),
              200u);
    manifest.reset();
}

TEST(ObsConcurrencyTest, ContextIsThreadLocal)
{
    // Every task sets its own value for the same key, does some work,
    // and must read back its own value — never a sibling's.
    obs::setContext("matrix", "main-thread-value");
    par::ThreadPool pool(4);
    std::atomic<int> mismatches{0};
    par::parallelFor(
        std::size_t{0}, std::size_t{500},
        [&mismatches](std::size_t i) {
            const std::string mine = "cell-" + std::to_string(i);
            obs::setContext("matrix", mine);
            // Touch the context a few times to widen the race window.
            for (int k = 0; k < 10; ++k) {
                if (obs::context("matrix") != mine)
                    mismatches.fetch_add(1);
            }
        },
        par::ForOptions{1, &pool});
    EXPECT_EQ(mismatches.load(), 0);
    // Worker-thread writes must not leak into the calling thread. The
    // calling thread may have run cells itself while helping, so its
    // context is either untouched or a cell value it set itself — but
    // with a serial pool it is exactly untouched.
    obs::clearContext();
    obs::setContext("matrix", "serial-check");
    par::ThreadPool serial(1);
    par::parallelFor(
        std::size_t{0}, std::size_t{1},
        [](std::size_t) { obs::setContext("matrix", "inline-cell"); },
        par::ForOptions{1, &serial});
    // Serial pools run inline, so the inline cell's write IS visible.
    EXPECT_EQ(obs::context("matrix"), "inline-cell");
    obs::clearContext();
    EXPECT_EQ(obs::context("matrix"), "");
}

TEST(ObsConcurrencyTest, SpansNestCorrectlyPerThread)
{
    par::ThreadPool pool(4);
    par::parallelFor(
        std::size_t{0}, std::size_t{100},
        [](std::size_t i) {
            obs::Span outer("test.par.outer:" + std::to_string(i));
            obs::Span inner("test.par.inner:" + std::to_string(i));
            EXPECT_GE(inner.elapsedSeconds(), 0.0);
        },
        par::ForOptions{1, &pool});
}

} // namespace
} // namespace slo
