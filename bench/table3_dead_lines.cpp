/**
 * @file
 * Table III: average percentage of dead lines (cache lines filled but
 * never re-hit) inserted into the L2 by the SpMV kernel, per reordering
 * technique. Paper: RANDOM 63.31%, ORIGINAL 25.08%, DEGSORT 26.88%,
 * DBG 25.23%, GORDER 17.73%, RABBIT 22.25%, RABBIT++ 16.37%.
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Table III: dead-line percentage");
    std::vector<reorder::Technique> techniques =
        reorder::figure2Techniques();
    techniques.push_back(reorder::Technique::RabbitPlusPlus);

    std::map<reorder::Technique, std::vector<double>> dead;
    for (const auto &m : env.corpus) {
        for (auto t : techniques) {
            const core::TimedOrdering ordering =
                core::orderingFor(m.entry, m.original, env.scale, t);
            const gpu::SimReport report = core::simulateOrdered(
                m.original, ordering.perm, env.spec);
            dead[t].push_back(report.deadLineFraction);
        }
        std::cerr << "[table3] " << m.entry.name << " done\n";
    }

    const std::map<reorder::Technique, std::string> paper = {
        {reorder::Technique::Random, "63.31%"},
        {reorder::Technique::Original, "25.08%"},
        {reorder::Technique::DegSort, "26.88%"},
        {reorder::Technique::Dbg, "25.23%"},
        {reorder::Technique::Gorder, "17.73%"},
        {reorder::Technique::Rabbit, "22.25%"},
        {reorder::Technique::RabbitPlusPlus, "16.37%"},
    };

    core::Table table({"technique", "dead lines (ours)", "paper"});
    for (auto t : techniques) {
        table.addRow({reorder::techniqueName(t),
                      core::fmtPct(core::mean(dead[t])),
                      paper.at(t)});
    }
    core::printHeading(std::cout,
                       "Average % of dead lines inserted into the L2");
    bench::emitTable(table, "table3_dead_lines");
    std::cout << "\n(shape to reproduce: RANDOM worst by far; "
                 "RABBIT++ lowest)\n";
    return 0;
}
