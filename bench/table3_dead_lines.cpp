/**
 * @file
 * Table III: average percentage of dead lines (cache lines filled but
 * never re-hit) inserted into the L2 by the SpMV kernel, per reordering
 * technique. Paper: RANDOM 63.31%, ORIGINAL 25.08%, DEGSORT 26.88%,
 * DBG 25.23%, GORDER 17.73%, RABBIT 22.25%, RABBIT++ 16.37%.
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/grid.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Table III: dead-line percentage");
    std::vector<reorder::Technique> techniques =
        reorder::figure2Techniques();
    techniques.push_back(reorder::Technique::RabbitPlusPlus);

    // Parallel grid, positional gather: per-technique vectors come out
    // in corpus order at any thread count.
    const auto reports = core::runGrid(
        env.corpus, techniques, [&env](const core::GridCell &cell) {
            const core::TimedOrdering ordering =
                core::orderingFor(cell.matrix->entry,
                                  cell.matrix->original, env.scale,
                                  cell.technique);
            return core::simulateOrderedAs(
                cell.matrix->entry.name, cell.matrix->original,
                ordering.perm, env.spec);
        });

    std::map<reorder::Technique, std::vector<double>> dead;
    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
        for (std::size_t ti = 0; ti < techniques.size(); ++ti)
            dead[techniques[ti]].push_back(
                reports[mi][ti].deadLineFraction);
        std::cerr << "[table3] " << env.corpus[mi].entry.name
                  << " done\n";
    }

    const std::map<reorder::Technique, std::string> paper = {
        {reorder::Technique::Random, "63.31%"},
        {reorder::Technique::Original, "25.08%"},
        {reorder::Technique::DegSort, "26.88%"},
        {reorder::Technique::Dbg, "25.23%"},
        {reorder::Technique::Gorder, "17.73%"},
        {reorder::Technique::Rabbit, "22.25%"},
        {reorder::Technique::RabbitPlusPlus, "16.37%"},
    };

    core::Table table({"technique", "dead lines (ours)", "paper"});
    for (auto t : techniques) {
        table.addRow({reorder::techniqueName(t),
                      core::fmtPct(core::mean(dead[t])),
                      paper.at(t)});
    }
    core::printHeading(std::cout,
                       "Average % of dead lines inserted into the L2");
    bench::emitTable(table, "table3_dead_lines");
    std::cout << "\n(shape to reproduce: RANDOM worst by far; "
                 "RABBIT++ lowest)\n";
    return 0;
}
