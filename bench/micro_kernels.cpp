/**
 * @file
 * google-benchmark micro-benchmarks for the CPU reference kernels and
 * the cache simulator itself (host-side throughput, not paper data).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "matrix/rng.hpp"
#include "gpu/simulate.hpp"
#include "kernels/kernels.hpp"
#include "matrix/generators.hpp"

namespace
{

using namespace slo;

const Csr &
benchMatrix()
{
    static const Csr matrix =
        gen::rmatSocial(15, 10.0, 42).permutedSymmetric(
            Permutation::random(1 << 15, 7));
    return matrix;
}

void
BM_SpmvCsr(benchmark::State &state)
{
    const Csr &m = benchMatrix();
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()), 1.0f);
    std::vector<Value> y(static_cast<std::size_t>(m.numRows()));
    for (auto _ : state) {
        kernels::spmvCsr(m, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        m.numNonZeros());
}
BENCHMARK(BM_SpmvCsr);

void
BM_SpmvCoo(benchmark::State &state)
{
    const Coo coo = benchMatrix().toCoo();
    std::vector<Value> x(static_cast<std::size_t>(coo.numCols()),
                         1.0f);
    std::vector<Value> y(static_cast<std::size_t>(coo.numRows()));
    for (auto _ : state) {
        std::fill(y.begin(), y.end(), 0.0f);
        kernels::spmvCoo(coo, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        coo.numEntries());
}
BENCHMARK(BM_SpmvCoo);

void
BM_SpmmCsr(benchmark::State &state)
{
    const Csr &m = benchMatrix();
    const auto k = static_cast<Index>(state.range(0));
    std::vector<Value> b(static_cast<std::size_t>(m.numCols()) *
                             static_cast<std::size_t>(k),
                         1.0f);
    std::vector<Value> c(static_cast<std::size_t>(m.numRows()) *
                         static_cast<std::size_t>(k));
    for (auto _ : state) {
        std::fill(c.begin(), c.end(), 0.0f);
        kernels::spmmCsr(m, b, k, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        m.numNonZeros() * k);
}
BENCHMARK(BM_SpmmCsr)->Arg(4)->Arg(16);

void
BM_CacheSimAccess(benchmark::State &state)
{
    cache::CacheConfig config{64 * 1024, 32, 16};
    std::vector<std::uint64_t> addrs;
    Rng rng(5);
    for (int i = 0; i < 1 << 16; ++i)
        addrs.push_back(rng.below(1 << 20));
    for (auto _ : state) {
        cache::CacheSim sim(config);
        for (std::uint64_t addr : addrs)
            benchmark::DoNotOptimize(sim.access(addr));
        sim.finish();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheSimAccess);

void
BM_SimulateSpmvEndToEnd(benchmark::State &state)
{
    const Csr &m = benchMatrix();
    const gpu::GpuSpec spec = gpu::GpuSpec::a6000ScaledL2(64 * 1024);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gpu::simulateKernel(m, spec).trafficBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        m.numNonZeros());
}
BENCHMARK(BM_SimulateSpmvEndToEnd);

} // namespace

BENCHMARK_MAIN();
