/**
 * @file
 * Extension bench (paper Sec. VII, left as future work there):
 * composing RABBIT++ with cache-blocked (tiled) SpMV.
 *
 * For a slice of low-insularity matrices, compares SpMV DRAM traffic
 * (normalized to the untiled compulsory traffic) for
 * {RANDOM, RABBIT++} x {untiled, tiled}. Expected shape:
 *   - tiling rescues a RANDOM-ordered matrix (bounded X window),
 *     at the price of extra streamed bytes and app changes;
 *   - RABBIT++ alone gets most of that benefit with no app changes;
 *   - composing both helps only where community structure is weak.
 */

#include <iostream>

#include "bench_common.hpp"
#include "gpu/simulate_tiled.hpp"
#include "kernels/tiled_spmv.hpp"

using namespace slo;

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: RABBIT++ x cache-blocked SpMV (Sec. VII)");
    bench::selectSlice(&env, 10);

    // Tile width: half the L2 in X elements, the classic choice.
    const auto tile_cols = static_cast<Index>(
        env.spec.l2.capacityBytes / (2 * kElemBytes));

    core::Table table({"matrix", "RANDOM", "RANDOM+tile", "RABBIT++",
                       "RABBIT+++tile"});
    std::vector<double> c_random, c_random_tile, c_rpp, c_rpp_tile;
    for (const auto &m : env.corpus) {
        const auto random = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Random);
        const auto rpp = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::RabbitPlusPlus);
        const Csr random_matrix =
            m.original.permutedSymmetric(random.perm);
        const Csr rpp_matrix = m.original.permutedSymmetric(rpp.perm);

        const double t_random =
            gpu::simulateKernel(random_matrix, env.spec)
                .normalizedTraffic;
        const double t_random_tile =
            gpu::simulateTiledSpmv(
                kernels::TiledCsr(random_matrix, tile_cols), env.spec)
                .normalizedTraffic;
        const double t_rpp =
            gpu::simulateKernel(rpp_matrix, env.spec)
                .normalizedTraffic;
        const double t_rpp_tile =
            gpu::simulateTiledSpmv(
                kernels::TiledCsr(rpp_matrix, tile_cols), env.spec)
                .normalizedTraffic;

        table.addRow({m.entry.name, core::fmtX(t_random),
                      core::fmtX(t_random_tile), core::fmtX(t_rpp),
                      core::fmtX(t_rpp_tile)});
        c_random.push_back(t_random);
        c_random_tile.push_back(t_random_tile);
        c_rpp.push_back(t_rpp);
        c_rpp_tile.push_back(t_rpp_tile);
        std::cerr << "[ext_tiling] " << m.entry.name << " done\n";
    }
    table.addRow({"MEAN", core::fmtX(core::mean(c_random)),
                  core::fmtX(core::mean(c_random_tile)),
                  core::fmtX(core::mean(c_rpp)),
                  core::fmtX(core::mean(c_rpp_tile))});
    core::printHeading(std::cout,
                       "SpMV DRAM traffic normalized to untiled "
                       "compulsory");
    bench::emitTable(table, "ext_tiling");
    std::cout << "\n(tile width: " << tile_cols
              << " columns = half the L2 in X elements)\n";
    return 0;
}
