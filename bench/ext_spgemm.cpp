/**
 * @file
 * Extension: SpGEMM (Gustavson row-merge, C = A*B with B in {A, A^T})
 * across reordering techniques and simulator backends.
 *
 * SpMV re-reads X one element per non-zero; SpGEMM re-reads whole B
 * *rows*, so a community ordering that packs a row's neighbours
 * together turns every merge into a burst of near-in-time B-row
 * fetches. This bench quantifies that: for every (matrix, technique)
 * pair in a corpus slice it runs all Simulator backends (analytic
 * roofline, LRU, Belady OPT, fiber cache) over both operand variants
 * and reports normalized traffic/runtime plus the merge-fan-in and
 * B-row reuse-distance statistics the fused access stream collects.
 *
 * Backend timings land in the manifest as `phase.spgemm.<backend>` so
 * the perf-trajectory gate tracks the simulation cost itself.
 */

#include <array>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/grid.hpp"
#include "gpu/simulator.hpp"
#include "kernels/spgemm.hpp"
#include "obs/obs.hpp"

using namespace slo;

namespace
{

/** Both backends' reports for every variant, backend-major per variant. */
struct CellReports
{
    // reports[variantIndex * numBackends + backendIndex]
    std::vector<gpu::SimReport> reports;
};

constexpr std::array<kernels::KernelKind, 2> kVariants = {
    kernels::KernelKind::SpgemmAA, kernels::KernelKind::SpgemmAAT};

const char *
variantName(kernels::KernelKind kind)
{
    return kernels::spgemmBName(kernels::spgemmVariant(kind));
}

} // namespace

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: SpGEMM traffic by reordering and backend");
    bench::selectSlice(&env, 6);

    std::vector<reorder::Technique> techniques =
        reorder::figure2Techniques();
    techniques.push_back(reorder::Technique::RabbitPlusPlus);
    techniques.push_back(reorder::Technique::Boba);

    const auto backends = gpu::allBackends();
    const std::size_t num_backends = backends.size();

    // One grid cell = one (matrix, technique) ordering, simulated under
    // every variant x backend. Phase attribution and the manifest's
    // simulation records use the matrix name explicitly because cells
    // run concurrently.
    const auto cells = core::runGrid(
        env.corpus, techniques, [&](const core::GridCell &cell) {
            const core::TimedOrdering ordering =
                core::orderingFor(cell.matrix->entry,
                                  cell.matrix->original, env.scale,
                                  cell.technique);
            const Csr reordered =
                cell.matrix->original.permutedSymmetric(ordering.perm);
            const std::string &name = cell.matrix->entry.name;
            CellReports out;
            out.reports.reserve(kVariants.size() * num_backends);
            for (const kernels::KernelKind kind : kVariants) {
                gpu::SimOptions options;
                options.kernel = kind;
                for (const gpu::SimBackend backend : backends) {
                    const obs::Span span(
                        std::string("simulate.spgemm:") +
                        gpu::backendName(backend));
                    gpu::SimReport report =
                        gpu::makeSimulator(backend, env.spec)
                            ->simulate(reordered, options);
                    obs::RunManifest::instance().recordPhase(
                        name,
                        std::string("spgemm.") +
                            gpu::backendName(backend),
                        span.elapsedSeconds());
                    // The manifest keeps the paper-methodology (LRU)
                    // records; the other backends only feed the tables.
                    if (backend == gpu::SimBackend::CacheLru)
                        obs::RunManifest::instance().addSimulation(
                            name, gpu::simReportJson(report));
                    out.reports.push_back(std::move(report));
                }
            }
            return out;
        });

    const auto report_at = [&](std::size_t mi, std::size_t ti,
                               std::size_t vi, std::size_t bi)
        -> const gpu::SimReport & {
        return cells[mi][ti].reports[vi * num_backends + bi];
    };
    const std::size_t lru_index = 1; // allBackends() declaration order
    const std::size_t fiber_index = 3;

    // --- Per-matrix LRU traffic, one row per (matrix, variant) -------
    std::vector<std::string> headers = {"matrix", "B"};
    for (const auto t : techniques)
        headers.push_back(reorder::techniqueName(t));
    core::Table traffic_table(headers);
    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
        for (std::size_t vi = 0; vi < kVariants.size(); ++vi) {
            std::vector<std::string> row = {env.corpus[mi].entry.name,
                                            variantName(kVariants[vi])};
            for (std::size_t ti = 0; ti < techniques.size(); ++ti)
                row.push_back(core::fmtX(
                    report_at(mi, ti, vi, lru_index).normalizedTraffic));
            traffic_table.addRow(std::move(row));
        }
        std::cerr << "[ext_spgemm] " << env.corpus[mi].entry.name
                  << " done\n";
    }
    core::printHeading(std::cout,
                       "SpGEMM DRAM traffic, LRU backend (normalized "
                       "to compulsory)");
    bench::emitTable(traffic_table, "spgemm_traffic");

    // --- Backend comparison: mean traffic per technique (B = A) ------
    std::vector<std::string> backend_headers = {"backend"};
    for (const auto t : techniques)
        backend_headers.push_back(reorder::techniqueName(t));
    core::Table backend_table(backend_headers);
    for (std::size_t bi = 0; bi < num_backends; ++bi) {
        std::vector<std::string> row = {gpu::backendName(backends[bi])};
        for (std::size_t ti = 0; ti < techniques.size(); ++ti) {
            std::vector<double> traffic;
            for (std::size_t mi = 0; mi < env.corpus.size(); ++mi)
                traffic.push_back(
                    report_at(mi, ti, 0, bi).normalizedTraffic);
            row.push_back(core::fmtX(core::mean(traffic)));
        }
        backend_table.addRow(std::move(row));
    }
    core::printHeading(std::cout,
                       "Mean normalized traffic by backend (rows) and "
                       "technique (columns), B = A");
    bench::emitTable(backend_table, "spgemm_backends");

    // --- Technique summary: runtime, reuse distance, fiber hits ------
    core::Table summary({"technique", "traffic A", "run time A",
                         "traffic AT", "reuse dist A",
                         "fiber hit rate A"});
    for (std::size_t ti = 0; ti < techniques.size(); ++ti) {
        std::vector<double> traffic_a, runtime_a, traffic_at, reuse_a,
            fiber_hits;
        for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
            const gpu::SimReport &lru_a =
                report_at(mi, ti, 0, lru_index);
            traffic_a.push_back(lru_a.normalizedTraffic);
            runtime_a.push_back(lru_a.normalizedRuntime);
            reuse_a.push_back(lru_a.spgemm.meanReuseDistance());
            traffic_at.push_back(
                report_at(mi, ti, 1, lru_index).normalizedTraffic);
            const gpu::SimReport &fiber =
                report_at(mi, ti, 0, fiber_index);
            fiber_hits.push_back(
                fiber.cacheStats.accesses == 0
                    ? 0.0
                    : static_cast<double>(fiber.cacheStats.hits) /
                          static_cast<double>(
                              fiber.cacheStats.accesses));
        }
        summary.addRow({reorder::techniqueName(techniques[ti]),
                        core::fmtX(core::mean(traffic_a)),
                        core::fmtX(core::mean(runtime_a)),
                        core::fmtX(core::mean(traffic_at)),
                        core::fmt(core::mean(reuse_a), 1),
                        core::fmt(core::mean(fiber_hits), 3)});
    }
    core::printHeading(std::cout,
                       "Technique summary (means over the corpus "
                       "slice, LRU backend unless noted)");
    bench::emitTable(summary, "spgemm_summary");

    // --- Merge structure (ordering-invariant sanity block) -----------
    core::Table merge({"matrix", "B", "nnz(A)", "flops", "nnz(C)",
                       "mean fan-in", "max fan-in"});
    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
        for (std::size_t vi = 0; vi < kVariants.size(); ++vi) {
            const gpu::SimReport &r = report_at(mi, 0, vi, lru_index);
            merge.addRow(
                {env.corpus[mi].entry.name,
                 variantName(kVariants[vi]),
                 std::to_string(
                     env.corpus[mi].original.numNonZeros()),
                 std::to_string(r.spgemm.flops),
                 std::to_string(r.spgemm.nnzC),
                 core::fmt(r.spgemm.meanFanIn(
                               env.corpus[mi].original.numRows()),
                           2),
                 std::to_string(r.spgemm.maxFanIn)});
        }
    }
    core::printHeading(std::cout,
                       "Merge structure (independent of ordering and "
                       "backend)");
    bench::emitTable(merge, "spgemm_merge");

    std::cout << "\n(community orderings shorten the B-row reuse "
                 "distance, which the fiber cache converts into hits "
                 "— the Gamma-style accelerator premise)\n";
    return 0;
}
