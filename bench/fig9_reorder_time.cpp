/**
 * @file
 * Figure 9: matrix reordering (pre-processing) time as the matrix size
 * increases, for GORDER / RABBIT / RABBIT++, plus the amortization
 * analysis of Sec. VI-C: how many SpMV iterations each technique needs
 * before its pre-processing cost pays for itself (paper: GORDER 7467,
 * RABBIT 741, RABBIT++ 1047, starting from RANDOM order).
 *
 * Timings are wall-clock on this host; the paper's absolute numbers are
 * from their machine, so only the ordering and scaling trend transfer.
 */

#include <iostream>

#include "bench_common.hpp"
#include "matrix/generators.hpp"
#include "obs/trace.hpp"
#include "reorder/gorder.hpp"
#include "reorder/rabbit.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Figure 9: reordering cost vs matrix size");

    // --- scaling sweep on one social-network family ------------------
    core::printHeading(std::cout,
                       "Reordering time (s) vs matrix size "
                       "(RMAT social family)");
    core::Table sweep({"nodes", "nnz", "GORDER", "RABBIT",
                       "RABBIT++", "GORDER/RABBIT"});
    const int max_scale = env.scale == core::Scale::Small ? 16 : 18;
    for (int scale = 13; scale <= max_scale; ++scale) {
        const Csr g = gen::rmatSocial(scale, 12.0, 77)
                          .permutedSymmetric(Permutation::random(
                              Index{1} << scale, 5));
        const obs::Span t_gorder("fig9.gorder");
        (void)reorder::gorderOrder(g, {5, 256});
        const double gorder_s = t_gorder.elapsedSeconds();
        const obs::Span t_rabbit("fig9.rabbit");
        const reorder::RabbitResult rabbit = reorder::rabbitOrder(g);
        const double rabbit_s = t_rabbit.elapsedSeconds();
        const obs::Span t_rpp("fig9.rabbitpp");
        (void)reorder::rabbitPlusFromRabbit(g, rabbit, {});
        const double rpp_s = rabbit_s + t_rpp.elapsedSeconds();
        sweep.addRow({std::to_string(g.numRows()),
                      std::to_string(g.numNonZeros()),
                      core::fmt(gorder_s, 3), core::fmt(rabbit_s, 3),
                      core::fmt(rpp_s, 3),
                      core::fmtX(gorder_s / rabbit_s, 1)});
        std::cerr << "[fig9] scale " << scale << " done\n";
    }
    bench::emitTable(sweep, "fig9_sweep");

    // --- amortization over the corpus (Sec. VI-C) ---------------------
    // iterations = reorder time / (SpMV time in RANDOM order - SpMV
    // time after reordering), using the modelled GPU kernel times.
    std::vector<double> iters_gorder, iters_rabbit, iters_rpp;
    for (const auto &m : env.corpus) {
        const core::TimedOrdering random = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Random);
        const double t_random =
            core::simulateOrdered(m.original, random.perm, env.spec)
                .modeledSeconds;
        auto iterations = [&](reorder::Technique t,
                              std::vector<double> &out) {
            const core::TimedOrdering ordering = core::orderingFor(
                m.entry, m.original, env.scale, t);
            const double t_kernel =
                core::simulateOrdered(m.original, ordering.perm,
                                      env.spec)
                    .modeledSeconds;
            if (t_random > t_kernel && ordering.reorderSeconds > 0.0) {
                out.push_back(ordering.reorderSeconds /
                              (t_random - t_kernel));
            }
        };
        iterations(reorder::Technique::Gorder, iters_gorder);
        iterations(reorder::Technique::Rabbit, iters_rabbit);
        iterations(reorder::Technique::RabbitPlusPlus, iters_rpp);
        std::cerr << "[fig9] amortization " << m.entry.name
                  << " done\n";
    }
    core::Table amort({"technique", "mean iterations to amortize",
                       "paper"});
    amort.addRow({"GORDER", core::fmt(core::mean(iters_gorder), 0),
                  "7467"});
    amort.addRow({"RABBIT", core::fmt(core::mean(iters_rabbit), 0),
                  "741"});
    amort.addRow({"RABBIT++", core::fmt(core::mean(iters_rpp), 0),
                  "1047"});
    core::printHeading(std::cout,
                       "SpMV iterations to amortize pre-processing "
                       "(vs RANDOM start)");
    bench::emitTable(amort, "fig9_amortization");
    std::cout << "\n(absolute iteration counts depend on host CPU vs "
                 "modelled GPU speeds; the paper's ordering "
                 "GORDER >> RABBIT++ > RABBIT is the reproducible "
                 "signal)\n";
    return 0;
}
