/**
 * @file
 * Figure 3: SpMV run time (normalized to ideal) under RABBIT, with
 * matrices arranged in increasing insularity order, plus the Sec. V
 * correlation analysis.
 *
 * Paper reference: insularity >= 0.95 -> within 26% of ideal on
 * average; insularity < 0.95 -> 1.81x; mawi is the anomaly (insularity
 * 0.988, run time 4.18x, largest community ~98% of the matrix);
 * Pearson(insularity, avg community size / n) = -0.472 (excl. mawi);
 * Pearson(insularity, skew) = -0.721.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "community/clustering.hpp"
#include "matrix/properties.hpp"

using namespace slo;

int
main()
{
    const bench::Env env = bench::loadEnv(
        "Figure 3: SpMV run time under RABBIT vs insularity");

    struct Row
    {
        std::string name;
        double insularity;
        double runtime;
        double avgCommunityFraction;
        double maxCommunityFraction;
        double skew;
    };
    std::vector<Row> rows;

    for (const auto &m : env.corpus) {
        const bench::RabbitInfo info = bench::rabbitInfoFor(env, m);
        const gpu::SimReport report = core::simulateOrdered(
            m.original, info.artifacts.perm, env.spec);
        const community::CommunitySizeStats sizes =
            community::communitySizeStats(info.artifacts.clustering);
        rows.push_back({m.entry.name, info.artifacts.insularity,
                        report.normalizedRuntime,
                        sizes.avgSizeFraction, sizes.maxSizeFraction,
                        degreeSkew(m.original)});
        std::cerr << "[fig3] " << m.entry.name << " done\n";
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.insularity < b.insularity;
              });

    core::Table table({"matrix", "insularity", "runtime/ideal",
                       "avg comm frac", "max comm frac", "skew"});
    for (const Row &row : rows) {
        table.addRow({row.name, core::fmt(row.insularity, 3),
                      core::fmtX(row.runtime),
                      core::fmt(row.avgCommunityFraction, 5),
                      core::fmt(row.maxCommunityFraction, 3),
                      core::fmtPct(row.skew)});
    }
    core::printHeading(std::cout,
                       "Matrices in increasing insularity order");
    bench::emitTable(table, "fig3_insularity");

    // Split means (the Fig. 3 takeaway).
    std::vector<double> low, high;
    double low_skew = 0.0, high_skew = 0.0;
    int low_n = 0, high_n = 0;
    for (const Row &row : rows) {
        if (row.insularity >= 0.95) {
            high.push_back(row.runtime);
            high_skew += row.skew;
            ++high_n;
        } else {
            low.push_back(row.runtime);
            low_skew += row.skew;
            ++low_n;
        }
    }
    core::Table split({"group", "count", "mean runtime/ideal (ours)",
                       "paper", "mean skew (ours)", "paper skew"});
    split.addRow({"insularity >= 0.95", std::to_string(high_n),
                  core::fmtX(core::mean(high)), "1.26x",
                  core::fmtPct(high_n ? high_skew / high_n : 0.0),
                  "16.37%"});
    split.addRow({"insularity <  0.95", std::to_string(low_n),
                  core::fmtX(core::mean(low)), "1.81x",
                  core::fmtPct(low_n ? low_skew / low_n : 0.0),
                  "41.74%"});
    core::printHeading(std::cout, "Insularity split (Sec. V)");
    bench::emitTable(split, "fig3_split");

    // Correlations; the paper excludes mawi from the community-size
    // correlation because its single giant community is degenerate.
    std::vector<double> ins, ins_no_anomaly, size_frac, skew, runtime;
    for (const Row &row : rows) {
        ins.push_back(row.insularity);
        skew.push_back(row.skew);
        runtime.push_back(row.runtime);
        if (row.maxCommunityFraction < 0.5) {
            ins_no_anomaly.push_back(row.insularity);
            size_frac.push_back(row.avgCommunityFraction);
        }
    }
    core::Table corr({"correlation", "ours", "paper"});
    corr.addRow({"Pearson(insularity, avg comm size/n) excl. anomalies",
                 core::fmt(core::pearson(ins_no_anomaly, size_frac), 3),
                 "-0.472"});
    corr.addRow({"Pearson(insularity, skew)",
                 core::fmt(core::pearson(ins, skew), 3), "-0.721"});
    corr.addRow({"Pearson(insularity, runtime/ideal)",
                 core::fmt(core::pearson(ins, runtime), 3), "(neg)"});
    corr.addRow({"Spearman(insularity, skew)",
                 core::fmt(core::spearman(ins, skew), 3), "(neg)"});
    corr.addRow({"Spearman(insularity, runtime/ideal)",
                 core::fmt(core::spearman(ins, runtime), 3), "(neg)"});
    core::printHeading(std::cout, "Correlations (Sec. V-B)");
    bench::emitTable(corr, "fig3_correlations");

    // The mawi anomaly callout: high insularity that does NOT deliver
    // performance, because one community swallowed the matrix.
    for (const Row &row : rows) {
        if (row.maxCommunityFraction > 0.5 && row.insularity > 0.9 &&
            row.runtime > 2.0) {
            std::cout << "\nAnomaly (paper's mawi): " << row.name
                      << " has insularity "
                      << core::fmt(row.insularity, 3)
                      << " but one community covering "
                      << core::fmtPct(row.maxCommunityFraction)
                      << " of the matrix and run time "
                      << core::fmtX(row.runtime)
                      << " (paper: 0.988 / ~98% / 4.18x)\n";
        }
    }
    return 0;
}
