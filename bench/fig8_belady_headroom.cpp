/**
 * @file
 * Figure 8: headroom for additional DRAM traffic reduction — SpMV
 * traffic with the real LRU L2 vs an idealized L2 running Belady's
 * optimal replacement, per reordering technique. The paper's takeaway:
 * the LRU-vs-OPT gap is smallest for RABBIT++ (7.6%), i.e. RABBIT++
 * already extracts most of the locality the cache could ever exploit.
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"

using namespace slo;

int
main()
{
    const bench::Env env = bench::loadEnv(
        "Figure 8: LRU vs Belady optimal replacement");
    std::vector<reorder::Technique> techniques =
        reorder::figure2Techniques();
    techniques.push_back(reorder::Technique::RabbitPlusPlus);

    std::map<reorder::Technique, std::vector<double>> lru_traffic;
    std::map<reorder::Technique, std::vector<double>> opt_traffic;

    for (const auto &m : env.corpus) {
        for (auto t : techniques) {
            const core::TimedOrdering ordering =
                core::orderingFor(m.entry, m.original, env.scale, t);
            const Csr reordered =
                m.original.permutedSymmetric(ordering.perm);
            gpu::SimOptions lru_options, opt_options;
            opt_options.useBelady = true;
            const gpu::SimReport lru =
                gpu::simulateKernel(reordered, env.spec, lru_options);
            const gpu::SimReport opt =
                gpu::simulateKernel(reordered, env.spec, opt_options);
            lru_traffic[t].push_back(lru.normalizedTraffic);
            opt_traffic[t].push_back(opt.normalizedTraffic);
        }
        std::cerr << "[fig8] " << m.entry.name << " done\n";
    }

    core::Table table({"technique", "LRU traffic", "Belady traffic",
                       "gap"});
    for (auto t : techniques) {
        const double lru = core::mean(lru_traffic[t]);
        const double opt = core::mean(opt_traffic[t]);
        table.addRow({reorder::techniqueName(t), core::fmtX(lru),
                      core::fmtX(opt),
                      core::fmtPct(lru / opt - 1.0)});
    }
    core::printHeading(std::cout,
                       "Mean SpMV traffic: LRU vs Belady OPT");
    bench::emitTable(table, "fig8_belady");

    std::cout << "\n(paper: the gap is smallest for RABBIT++, at "
                 "7.6%; OPT never exceeds LRU)\n";
    return 0;
}
