/**
 * @file
 * Extension bench (paper Sec. VII): "we believe the insights of
 * grouping insular and hub nodes should extend to community-based
 * reordering in general as well as matrix reordering techniques based
 * on graph partitioning [METIS, GraphGrind]".
 *
 * Tests exactly that: a METIS-style multilevel partitioning ordering
 * (PARTITION), and the same ordering with the RABBIT++ modifications
 * applied on top, treating the parts as communities (PARTITION++).
 * RABBIT++ included for reference.
 */

#include <iostream>

#include "bench_common.hpp"
#include "partition/partition.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: insular/hub grouping on partitioning orderings "
        "(Sec. VII)");
    bench::selectSlice(&env, 16);

    core::Table table({"matrix", "PARTITION", "PARTITION++",
                       "RABBIT++"});
    std::vector<double> t_part, t_partpp, t_rpp;
    for (const auto &m : env.corpus) {
        const auto part = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Partition);

        // PARTITION++: the RABBIT++ modifications with parts as the
        // community structure.
        partition::PartitionOptions popts;
        popts.numParts = 64;
        const partition::PartitionResult parts =
            partition::partitionGraph(m.original, popts);
        reorder::RabbitResult as_communities;
        as_communities.perm = part.perm;
        as_communities.clustering =
            community::Clustering(parts.assignment);
        const reorder::RabbitPlusResult partpp =
            reorder::rabbitPlusFromRabbit(
                m.original, as_communities,
                {true, reorder::HubTreatment::HubGroup, 1.0});

        const auto rpp = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::RabbitPlusPlus);

        const double a =
            core::simulateOrdered(m.original, part.perm, env.spec)
                .normalizedTraffic;
        const double b =
            core::simulateOrdered(m.original, partpp.perm, env.spec)
                .normalizedTraffic;
        const double c =
            core::simulateOrdered(m.original, rpp.perm, env.spec)
                .normalizedTraffic;
        table.addRow({m.entry.name, core::fmtX(a), core::fmtX(b),
                      core::fmtX(c)});
        t_part.push_back(a);
        t_partpp.push_back(b);
        t_rpp.push_back(c);
        std::cerr << "[ext_partition] " << m.entry.name << " done\n";
    }
    table.addRow({"MEAN", core::fmtX(core::mean(t_part)),
                  core::fmtX(core::mean(t_partpp)),
                  core::fmtX(core::mean(t_rpp))});
    core::printHeading(std::cout,
                       "SpMV DRAM traffic normalized to compulsory");
    bench::emitTable(table, "ext_partition");
    std::cout << "\n(the paper's conjecture holds if PARTITION++ <= "
                 "PARTITION on average)\n";
    return 0;
}
