/**
 * @file
 * Validates the observability artifacts a traced bench run emits.
 *
 * Usage: obs_validate <manifest.json> <trace.json>
 *
 * Parses both documents with the same obs::Json parser the library
 * uses, then checks the run-manifest schema (git SHA, scale, per-matrix
 * phases and SimReport fields, the v2 prof/pool/latency sections and
 * per-phase counter deltas) and the Chrome trace-event shape (non-
 * empty; complete "X" events with name/ts/dur/tid; optional "C"
 * counter samples and "M" thread-name metadata; nested pipeline
 * spans). Exits non-zero with a message on the first violation; the
 * `bench_smoke` ctest drives it after a tiny traced bench run.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace
{

using slo::obs::Json;

int g_checks = 0;

[[noreturn]] void
fail(const std::string &message)
{
    std::cerr << "obs_validate: FAIL after " << g_checks
              << " checks: " << message << "\n";
    std::exit(1);
}

void
check(bool ok, const std::string &message)
{
    if (!ok)
        fail(message);
    ++g_checks;
}

Json
parseFile(const std::string &path, const std::string &what)
{
    std::ifstream in(path);
    if (!in.good())
        fail("cannot open " + what + " file: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto parsed = Json::parse(buffer.str(), &error);
    if (!parsed.has_value())
        fail(what + " is not valid JSON (" + path + "): " + error);
    return *std::move(parsed);
}

void
validateManifest(const Json &manifest)
{
    check(manifest.isObject(), "manifest root must be an object");
    check(manifest.at("schema").asString() == "slo.run-manifest/2",
          "manifest schema tag mismatch");
    check(!manifest.at("bench").asString().empty(),
          "manifest.bench empty");
    check(!manifest.at("started_at").asString().empty(),
          "manifest.started_at empty");
    check(!manifest.at("git_sha").asString().empty(),
          "manifest.git_sha empty");
    check(!manifest.at("hostname").asString().empty(),
          "manifest.hostname empty");
    check(manifest.at("build").contains("compiler"),
          "manifest.build.compiler missing");
    check(!manifest.at("scale").asString().empty(),
          "manifest.scale empty");
    check(manifest.at("num_matrices").asUint() >= 1,
          "manifest.num_matrices must be >= 1");

    // v2 prof section: whichever backend ran, the section must say
    // which one and (when degraded) why — degradation is recorded,
    // never silent and never fatal.
    const Json &prof = manifest.at("prof");
    const std::string &backend = prof.at("backend").asString();
    check(backend == "perf" || backend == "rusage" || backend == "off",
          "manifest.prof.backend must be perf|rusage|off");
    check(prof.contains("degraded"), "manifest.prof.degraded missing");
    if (prof.at("degraded").asBool())
        check(!prof.at("degradation_reason").asString().empty(),
              "degraded prof section lacks a degradation_reason");
    check(prof.at("peak_rss_kb").isNumber(),
          "manifest.prof.peak_rss_kb missing");

    // v2 pool section: the par runtime's self-observability.
    const Json &pool = manifest.at("pool");
    check(pool.at("threads").asInt() >= 1,
          "manifest.pool.threads must be >= 1");
    const double utilization = pool.at("utilization").asDouble();
    check(utilization >= 0.0 && utilization <= 1.0,
          "manifest.pool.utilization out of [0, 1]");
    check(pool.at("workers").isArray(),
          "manifest.pool.workers must be an array");

    // v2 latency section: quantiles must be ordered and bracketed.
    const Json &latency = manifest.at("latency");
    check(latency.isObject(), "manifest.latency must be an object");
    for (const auto &[name, hist] : latency.entries()) {
        const double p50 = hist.at("p50_seconds").asDouble();
        const double p99 = hist.at("p99_seconds").asDouble();
        check(hist.at("count").asUint() > 0,
              "latency '" + name + "' recorded no samples");
        check(p50 <= p99, "latency '" + name + "': p50 > p99");
        check(hist.at("min_seconds").asDouble() <= p50 &&
                  p99 <= hist.at("max_seconds").asDouble(),
              "latency '" + name + "': quantiles outside [min, max]");
    }

    const Json &matrices = manifest.at("matrices");
    check(matrices.isObject() && matrices.size() >= 1,
          "manifest.matrices must be a non-empty object");
    bool saw_counters = false;
    for (const auto &[name, matrix] : matrices.entries()) {
        const Json &phases = matrix.at("phases");
        check(phases.isObject() && phases.size() >= 1,
              "matrix '" + name + "' has no recorded phases");
        for (const auto &[phase, seconds] : phases.entries())
            check(seconds.isNumber() && seconds.asDouble() >= 0.0,
                  "phase '" + phase + "' of '" + name +
                      "' has a bad duration");
        // v2 per-phase counter deltas (absent only when the backend is
        // forced off).
        if (matrix.contains("counters")) {
            const Json &counters = matrix.at("counters");
            check(counters.isObject() && counters.size() >= 1,
                  "matrix '" + name + "' has an empty counters section");
            for (const auto &[phase, delta] : counters.entries())
                check(delta.isObject() && delta.size() >= 1,
                      "counters for phase '" + phase + "' of '" + name +
                          "' are empty");
            saw_counters = true;
        }
        if (!matrix.contains("simulations"))
            continue;
        const Json &sims = matrix.at("simulations");
        for (std::size_t i = 0; i < sims.size(); ++i) {
            const Json &sim = sims.at(i);
            for (const char *field :
                 {"traffic_bytes", "compulsory_bytes",
                  "normalized_traffic", "modeled_seconds",
                  "l2_hit_rate", "dead_line_fraction"}) {
                check(sim.contains(field) && sim.at(field).isNumber(),
                      "simulation " + std::to_string(i) + " of '" +
                          name + "' lacks numeric field " + field);
            }
            check(sim.at("cache").at("accesses").asUint() > 0,
                  "simulation of '" + name + "' saw no cache accesses");
        }
    }
    check(backend == "off" || saw_counters,
          "no matrix carries per-phase counter deltas although the "
          "prof backend is on");
    check(manifest.at("metrics").contains("counters"),
          "manifest.metrics.counters missing");
}

void
validateTrace(const Json &trace)
{
    const Json &events = trace.at("traceEvents");
    check(events.isArray() && events.size() >= 3,
          "traceEvents must hold at least a few spans");

    bool saw_corpus = false, saw_reorder = false, saw_simulate = false;
    bool saw_nested = false, saw_span = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &event = events.at(i);
        check(!event.at("name").asString().empty(),
              "trace event without a name");
        const std::string &ph = event.at("ph").asString();
        check(ph == "X" || ph == "C" || ph == "M",
              "trace events must be 'X' spans, 'C' counter samples or "
              "'M' metadata");
        check(event.at("tid").isNumber(), "missing tid");
        const std::string &name = event.at("name").asString();
        if (ph == "M") {
            // Thread-name metadata (par workers name their tracks).
            check(name == "thread_name",
                  "unexpected metadata event: " + name);
            check(!event.at("args").at("name").asString().empty(),
                  "thread_name metadata without a name");
            continue;
        }
        check(event.at("ts").asDouble() >= 0.0, "negative ts");
        if (ph == "C") {
            check(event.at("args").at("value").isNumber(),
                  "counter sample '" + name + "' without a value");
            continue;
        }
        saw_span = true;
        check(event.at("dur").asDouble() >= 0.0, "negative dur");
        saw_corpus |= name.rfind("corpus.", 0) == 0 ||
                      name.rfind("bench.load_corpus", 0) == 0;
        saw_reorder |= name.rfind("reorder.", 0) == 0 ||
                       name.rfind("rabbit", 0) == 0;
        saw_simulate |= name.rfind("simulate.", 0) == 0 ||
                        name.rfind("gpu.", 0) == 0;
        saw_nested |= event.at("args").at("depth").asInt() > 0;
    }
    check(saw_span, "no complete ('X') span in the trace");
    check(saw_corpus, "no corpus-loading span in the trace");
    check(saw_reorder, "no reordering span in the trace");
    check(saw_simulate, "no simulation span in the trace");
    check(saw_nested, "no nested span (depth > 0) in the trace");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: obs_validate <manifest.json> <trace.json>\n";
        return 2;
    }
    // A structurally wrong document (e.g. the two paths swapped) shows
    // up as a missing key; report it like any other failed check.
    try {
        validateManifest(parseFile(argv[1], "manifest"));
        validateTrace(parseFile(argv[2], "trace"));
    } catch (const std::exception &e) {
        fail(std::string("unexpected document shape: ") + e.what());
    }
    std::cout << "obs_validate: OK (" << g_checks << " checks)\n";
    return 0;
}
