#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "community/metrics.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "prof/prof.hpp"

namespace slo::bench
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream in(text);
    std::string part;
    while (std::getline(in, part, ',')) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

} // namespace

Env
loadEnv(const std::string &bench_name)
{
    // One hook for every bench binary: start the run manifest and make
    // sure the trace/manifest/metrics artifacts get written on exit
    // (only when SLO_TRACE is on).
    obs::RunManifest::instance().begin(bench_name);
    obs::installExitEmission();
    // Probe the counter backend once and register the manifest hooks
    // (`prof`/`latency` sections); degradation to rusage is logged,
    // never fatal.
    prof::initProcess();

    Env env;
    env.scale = core::scaleFromEnv();
    env.spec = core::specForScale(env.scale);

    obs::RunManifest::instance().set("scale",
                                     core::scaleName(env.scale));
    // Record the worker count (SLO_THREADS) in the manifest only — the
    // stdout banner stays byte-identical across thread counts.
    obs::RunManifest::instance().set(
        "threads", static_cast<std::uint64_t>(
                       par::ThreadPool::global().numThreads()));
    {
        obs::Json spec = obs::Json::object();
        spec["name"] = env.spec.name;
        spec["l2_capacity_bytes"] = env.spec.l2.capacityBytes;
        spec["l2_line_bytes"] = env.spec.l2.lineBytes;
        spec["l2_ways"] = env.spec.l2.ways;
        spec["stream_bandwidth_gbs"] = env.spec.streamBandwidthGBs;
        spec["peak_bandwidth_gbs"] = env.spec.peakBandwidthGBs;
        obs::RunManifest::instance().set("spec", std::move(spec));
    }

    std::cout << "# " << bench_name << "\n";
    std::cout << "# platform: " << env.spec.name << " | L2 "
              << env.spec.l2.capacityBytes / 1024 << " KiB, "
              << env.spec.l2.lineBytes << "B lines, "
              << env.spec.l2.ways << "-way | stream BW "
              << env.spec.streamBandwidthGBs << " GB/s (peak "
              << env.spec.peakBandwidthGBs << ")\n";
    std::cout << "# corpus scale: " << core::scaleName(env.scale)
              << "\n";
    std::cout.flush();

    core::CorpusFilter filter;
    if (const char *limit_env = std::getenv("REPRO_LIMIT")) {
        const int limit = std::atoi(limit_env);
        if (limit > 0)
            filter.limit = static_cast<std::size_t>(limit);
    }
    if (const char *names_env = std::getenv("REPRO_MATRICES"))
        filter.names = splitCsv(names_env);

    {
        SLO_SPAN("bench.load_corpus");
        env.corpus = core::loadCorpus(env.scale, filter);
    }
    std::cout << "# matrices: " << env.corpus.size() << "\n";
    obs::RunManifest::instance().set(
        "num_matrices", static_cast<std::uint64_t>(env.corpus.size()));
    return env;
}

void
emitTable(const core::Table &table, const std::string &stem)
{
    table.print(std::cout);
    if (const char *dir = std::getenv("REPRO_CSV_DIR")) {
        std::filesystem::create_directories(dir);
        const auto path =
            std::filesystem::path(dir) / (stem + ".csv");
        table.writeCsvFile(path.string());
        std::cout << "(csv: " << path.string() << ")\n";
    }
}

RabbitInfo
rabbitInfoFor(const Env &env, const core::CorpusMatrix &m)
{
    RabbitInfo info;
    info.artifacts =
        core::rabbitArtifactsFor(m.entry, m.original, env.scale);
    info.highInsularity = info.artifacts.insularity >=
                          community::kInsularityThreshold;
    return info;
}

void
selectSlice(Env *env, std::size_t target)
{
    if (target == 0 || env->corpus.size() <= target)
        return;
    const double stride = static_cast<double>(env->corpus.size()) /
                          static_cast<double>(target);
    std::vector<core::CorpusMatrix> slice;
    for (std::size_t i = 0; i < target; ++i) {
        slice.push_back(std::move(
            env->corpus[static_cast<std::size_t>(
                static_cast<double>(i) * stride)]));
    }
    env->corpus = std::move(slice);
    std::cout << "# sliced to " << env->corpus.size()
              << " matrices (uniform stride)\n";
}

double
maskedMean(const std::vector<double> &values,
           const std::vector<bool> &mask, bool selected)
{
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (mask[i] == selected) {
            total += values[i];
            ++count;
        }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

} // namespace slo::bench
