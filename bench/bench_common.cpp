#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "community/metrics.hpp"

namespace slo::bench
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream in(text);
    std::string part;
    while (std::getline(in, part, ',')) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

} // namespace

Env
loadEnv(const std::string &bench_name)
{
    Env env;
    env.scale = core::scaleFromEnv();
    env.spec = core::specForScale(env.scale);

    std::cout << "# " << bench_name << "\n";
    std::cout << "# platform: " << env.spec.name << " | L2 "
              << env.spec.l2.capacityBytes / 1024 << " KiB, "
              << env.spec.l2.lineBytes << "B lines, "
              << env.spec.l2.ways << "-way | stream BW "
              << env.spec.streamBandwidthGBs << " GB/s (peak "
              << env.spec.peakBandwidthGBs << ")\n";
    std::cout << "# corpus scale: " << core::scaleName(env.scale)
              << "\n";
    std::cout.flush();

    env.corpus = core::loadCorpus(env.scale, &std::cerr);

    if (const char *limit_env = std::getenv("REPRO_LIMIT")) {
        const auto limit =
            static_cast<std::size_t>(std::atoi(limit_env));
        if (limit > 0 && limit < env.corpus.size())
            env.corpus.resize(limit);
    }
    if (const char *names_env = std::getenv("REPRO_MATRICES")) {
        const auto names = splitCsv(names_env);
        std::vector<core::CorpusMatrix> filtered;
        for (auto &m : env.corpus) {
            for (const std::string &name : names) {
                if (m.entry.name == name) {
                    filtered.push_back(std::move(m));
                    break;
                }
            }
        }
        env.corpus = std::move(filtered);
    }
    std::cout << "# matrices: " << env.corpus.size() << "\n";
    return env;
}

void
emitTable(const core::Table &table, const std::string &stem)
{
    table.print(std::cout);
    if (const char *dir = std::getenv("REPRO_CSV_DIR")) {
        std::filesystem::create_directories(dir);
        const auto path =
            std::filesystem::path(dir) / (stem + ".csv");
        table.writeCsvFile(path.string());
        std::cout << "(csv: " << path.string() << ")\n";
    }
}

RabbitInfo
rabbitInfoFor(const Env &env, const core::CorpusMatrix &m)
{
    RabbitInfo info;
    info.artifacts =
        core::rabbitArtifactsFor(m.entry, m.original, env.scale);
    info.highInsularity = info.artifacts.insularity >=
                          community::kInsularityThreshold;
    return info;
}

void
selectSlice(Env *env, std::size_t target)
{
    if (target == 0 || env->corpus.size() <= target)
        return;
    const double stride = static_cast<double>(env->corpus.size()) /
                          static_cast<double>(target);
    std::vector<core::CorpusMatrix> slice;
    for (std::size_t i = 0; i < target; ++i) {
        slice.push_back(std::move(
            env->corpus[static_cast<std::size_t>(
                static_cast<double>(i) * stride)]));
    }
    env->corpus = std::move(slice);
    std::cout << "# sliced to " << env->corpus.size()
              << " matrices (uniform stride)\n";
}

double
maskedMean(const std::vector<double> &values,
           const std::vector<bool> &mask, bool selected)
{
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (mask[i] == selected) {
            total += values[i];
            ++count;
        }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

} // namespace slo::bench
