/**
 * @file
 * Shared harness for the per-figure/per-table bench binaries.
 *
 * Every bench binary loads the same corpus (via the on-disk artifact
 * cache, so only the first binary pays generation cost), prints the
 * modelled platform, and emits its figure's rows. Environment knobs:
 *
 *   REPRO_SCALE=small|medium|large  corpus + L2 scale (default small)
 *   REPRO_LIMIT=<n>                 only the first n corpus matrices
 *   REPRO_MATRICES=a,b,c            only the named corpus matrices
 *   REPRO_CSV_DIR=<dir>             also write each table as CSV
 *   SLO_CACHE_DIR / SLO_NO_CACHE    artifact cache control
 *   SLO_LOG=<level>                 log verbosity (default info)
 *   SLO_TRACE=1                     collect spans; emit the run
 *                                   manifest, Chrome trace and metrics
 *                                   JSONL on exit
 *   SLO_OBS_DIR=<dir>               where those artifacts go (default .)
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/stats.hpp"
#include "gpu/simulate.hpp"
#include "reorder/reorder.hpp"

namespace slo::bench
{

/** Everything a bench binary needs. */
struct Env
{
    core::Scale scale = core::Scale::Small;
    gpu::GpuSpec spec;
    std::vector<core::CorpusMatrix> corpus;
};

/**
 * Load scale/spec/corpus (with REPRO_LIMIT / REPRO_MATRICES applied)
 * and print the platform banner.
 */
Env loadEnv(const std::string &bench_name);

/** Print (and optionally CSV-dump) a finished table. */
void emitTable(const core::Table &table, const std::string &stem);

/**
 * RABBIT artifacts + the matrix's insularity class, for the benches
 * that split results into INS < 0.95 and INS >= 0.95 like the paper.
 */
struct RabbitInfo
{
    core::RabbitArtifacts artifacts;
    bool highInsularity = false;
};

RabbitInfo rabbitInfoFor(const Env &env, const core::CorpusMatrix &m);

/**
 * Thin the corpus to ~@p target matrices with a uniform stride, so the
 * slice spans all domains (the corpus is ordered by publisher group).
 */
void selectSlice(Env *env, std::size_t target);

/** Mean of the values whose mask bit is set (0 if none). */
double maskedMean(const std::vector<double> &values,
                  const std::vector<bool> &mask, bool selected);

} // namespace slo::bench
