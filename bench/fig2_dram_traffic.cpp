/**
 * @file
 * Figure 2: SpMV-CSR DRAM traffic (normalized to compulsory traffic)
 * across RANDOM / ORIGINAL / DEGSORT / DBG / GORDER / RABBIT on the
 * full corpus, plus the run-time means quoted in the caption.
 *
 * Paper reference values (their 50-matrix corpus, real A6000):
 *   traffic  — RANDOM 3.36x, ORIGINAL 1.54x, DEGSORT 1.61x, DBG 1.48x,
 *              GORDER 1.29x, RABBIT 1.27x
 *   run time — RANDOM 6.21x, ORIGINAL 1.96x, DEGSORT 2.17x, DBG 1.94x,
 *              GORDER 1.56x, RABBIT 1.54x
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/grid.hpp"

using namespace slo;

int
main()
{
    const bench::Env env = bench::loadEnv("Figure 2: SpMV DRAM traffic "
                                          "by reordering technique");
    const auto techniques = reorder::figure2Techniques();

    std::vector<std::string> headers = {"matrix"};
    for (auto t : techniques)
        headers.push_back(reorder::techniqueName(t));
    core::Table traffic_table(headers);

    std::map<reorder::Technique, std::vector<double>> traffic;
    std::map<reorder::Technique, std::vector<double>> runtime;
    std::vector<double> best_traffic;
    std::map<reorder::Technique, int> wins;
    int within_10pct = 0;

    // Simulate every (matrix, technique) cell on the thread pool; the
    // result table is indexed by position, so the sequential gathering
    // below emits the same bytes at any SLO_THREADS value.
    const auto reports = core::runGrid(
        env.corpus, techniques, [&env](const core::GridCell &cell) {
            const core::TimedOrdering ordering =
                core::orderingFor(cell.matrix->entry,
                                  cell.matrix->original, env.scale,
                                  cell.technique);
            return core::simulateOrderedAs(
                cell.matrix->entry.name, cell.matrix->original,
                ordering.perm, env.spec);
        });

    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
        const auto &m = env.corpus[mi];
        std::vector<std::string> row = {m.entry.name};
        double best = 1e300;
        for (std::size_t ti = 0; ti < techniques.size(); ++ti) {
            const auto t = techniques[ti];
            const gpu::SimReport &report = reports[mi][ti];
            traffic[t].push_back(report.normalizedTraffic);
            runtime[t].push_back(report.normalizedRuntime);
            row.push_back(core::fmtX(report.normalizedTraffic));
            best = std::min(best, report.normalizedTraffic);
        }
        best_traffic.push_back(best);
        if (best <= 1.10)
            ++within_10pct;
        // Who wins this matrix?
        for (auto t : techniques) {
            if (traffic[t].back() <= best + 1e-12) {
                ++wins[t];
                break;
            }
        }
        traffic_table.addRow(std::move(row));
        std::cerr << "[fig2] " << m.entry.name << " done\n";
    }

    core::printHeading(std::cout,
                       "Per-matrix DRAM traffic (normalized to "
                       "compulsory)");
    bench::emitTable(traffic_table, "fig2_traffic");

    core::Table summary({"metric", "RANDOM", "ORIGINAL", "DEGSORT",
                         "DBG", "GORDER", "RABBIT"});
    auto summary_row = [&](const std::string &name, auto &per_tech,
                           auto fmt) {
        std::vector<std::string> row = {name};
        for (auto t : techniques)
            row.push_back(fmt(core::mean(per_tech[t])));
        summary.addRow(std::move(row));
    };
    summary_row("mean traffic (ours)", traffic,
                [](double v) { return core::fmtX(v); });
    summary.addRow({"mean traffic (paper)", "3.36x", "1.54x", "1.61x",
                    "1.48x", "1.29x", "1.27x"});
    summary_row("mean run time (ours)", runtime,
                [](double v) { return core::fmtX(v); });
    summary.addRow({"mean run time (paper)", "6.21x", "1.96x", "2.17x",
                    "1.94x", "1.56x", "1.54x"});
    {
        std::vector<std::string> row = {"best-technique wins"};
        for (auto t : techniques)
            row.push_back(std::to_string(wins[t]));
        summary.addRow(std::move(row));
    }
    core::printHeading(std::cout, "Summary vs paper");
    bench::emitTable(summary, "fig2_summary");

    std::cout << "\nObservation 1 check: best reordering brings "
              << within_10pct << "/" << env.corpus.size()
              << " matrices within 10% of compulsory traffic "
              << "(paper: 22/50)\n";
    return 0;
}
