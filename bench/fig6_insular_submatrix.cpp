/**
 * @file
 * Figure 6: DRAM traffic of the *insular sub-matrix* (normalized to its
 * own compulsory traffic) once insular nodes are grouped — evaluated,
 * as in the paper, by masking all non-zeros that do not connect to
 * insular nodes. The insular portion should sit at ~1.0x; the
 * wiki-Talk-like entry dips below 1.0 because its overwhelmingly empty
 * rows make the compulsory formula an overestimate (paper footnote 2).
 *
 * Also reports the community-size shrink from grouping insular nodes
 * (paper: avg community size drops 27% overall, 41% for
 * insularity < 0.95).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "community/metrics.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Figure 6: insular sub-matrix DRAM traffic");

    struct Row
    {
        std::string name;
        double insularity;
        double subTraffic;
        double shrink; // insular-side community size vs RABBIT's
    };
    std::vector<Row> rows;

    for (const auto &m : env.corpus) {
        const bench::RabbitInfo info = bench::rabbitInfoFor(env, m);
        reorder::RabbitResult rabbit;
        rabbit.perm = info.artifacts.perm;
        rabbit.clustering = info.artifacts.clustering;
        const reorder::RabbitPlusResult rpp =
            reorder::rabbitPlusFromRabbit(
                m.original, rabbit,
                {true, reorder::HubTreatment::None, 1.0});

        // Mask non-zeros that do not touch an insular node, then run
        // the SpMV simulation on the masked matrix in RABBIT++ order.
        const Csr masked =
            m.original.filtered([&rpp](Index r, Index c) {
                return rpp.insular[static_cast<std::size_t>(r)] ||
                       rpp.insular[static_cast<std::size_t>(c)];
            });
        const gpu::SimReport report = core::simulateOrdered(
            masked, rpp.perm, env.spec);

        // Community-size shrink: insular members of each community vs
        // all members.
        const auto sizes = info.artifacts.clustering.communitySizes();
        std::vector<Index> insular_sizes(sizes.size(), 0);
        for (Index v = 0; v < m.original.numRows(); ++v) {
            if (rpp.insular[static_cast<std::size_t>(v)]) {
                ++insular_sizes[static_cast<std::size_t>(
                    info.artifacts.clustering.label(v))];
            }
        }
        double before = 0.0, after = 0.0;
        Index communities = 0;
        for (std::size_t c = 0; c < sizes.size(); ++c) {
            if (sizes[c] == 0)
                continue;
            ++communities;
            before += sizes[c];
            after += insular_sizes[c];
        }
        const double shrink =
            before > 0.0 ? 1.0 - after / before : 0.0;
        rows.push_back({m.entry.name, info.artifacts.insularity,
                        report.normalizedTraffic, shrink});
        std::cerr << "[fig6] " << m.entry.name << " done\n";
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.insularity < b.insularity;
              });
    core::Table table({"matrix", "insularity",
                       "insular sub-matrix traffic",
                       "community shrink"});
    for (const Row &row : rows) {
        table.addRow({row.name, core::fmt(row.insularity, 3),
                      core::fmtX(row.subTraffic),
                      core::fmtPct(row.shrink)});
    }
    core::printHeading(std::cout, "Insular sub-matrix traffic");
    bench::emitTable(table, "fig6_insular_submatrix");

    std::vector<double> all_traffic, all_shrink, low_shrink;
    for (const Row &row : rows) {
        all_traffic.push_back(row.subTraffic);
        all_shrink.push_back(row.shrink);
        if (row.insularity < 0.95)
            low_shrink.push_back(row.shrink);
    }
    std::cout << "\nmean insular sub-matrix traffic: "
              << core::fmtX(core::mean(all_traffic))
              << " (paper: ~1.0x, i.e. compulsory)\n";
    std::cout << "mean community-size shrink: all "
              << core::fmtPct(core::mean(all_shrink))
              << " (paper 27%), insularity<0.95 "
              << core::fmtPct(core::mean(low_shrink))
              << " (paper 41%)\n";
    return 0;
}
