/**
 * @file
 * google-benchmark micro-benchmarks for the reordering techniques
 * (pre-processing throughput on this host; complements Fig. 9).
 *
 * Every technique runs thread-scaling legs at 1, 2, 4 and the
 * SLO_THREADS-default worker count: a per-leg ThreadPool installed via
 * par::ScopedPoolOverride drives the whole computeOrdering stack, so
 * the legs measure the ordering builders' own parallelism. Counters
 * are accesses-agnostic rows/sec (items = matrix rows, comparable
 * across techniques regardless of how many non-zeros each touches)
 * plus `speedup` relative to the technique's own 1-thread leg (legs
 * run in registration order, so the serial leg always lands first).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>

#include "matrix/generators.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"
#include "reorder/reorder.hpp"

namespace
{

using namespace slo;

const Csr &
benchMatrix()
{
    // Shuffled community graph: representative input for reordering.
    static const Csr matrix =
        gen::hierarchicalCommunity(1 << 14, 8, 3, 10.0, 0.25, 21)
            .permutedSymmetric(Permutation::random(1 << 14, 3));
    return matrix;
}

/** Thread counts worth plotting: 1 (serial), 2, 4, host default. */
void
threadArgs(benchmark::internal::Benchmark *bench)
{
    bench->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(
        par::defaultThreads());
}

/** Mean seconds of each technique's 1-thread leg, for `speedup`. */
std::map<std::string, double> &
serialSeconds()
{
    static std::map<std::string, double> seconds;
    return seconds;
}

void
runTechnique(benchmark::State &state, reorder::Technique technique)
{
    const Csr &m = benchMatrix();
    reorder::ReorderOptions options;
    options.gorderHubCap = 256;
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    const par::ScopedPoolOverride scoped(pool);
    std::uint64_t work_nanos = 0;
    for (auto _ : state) {
        const std::uint64_t start = obs::monotonicNanos();
        benchmark::DoNotOptimize(
            reorder::computeOrdering(technique, m, options).newIds());
        work_nanos += obs::monotonicNanos() - start;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * m.numRows());
    const double mean_seconds =
        state.iterations() > 0
            ? static_cast<double>(work_nanos) / 1e9 /
                  static_cast<double>(state.iterations())
            : 0.0;
    const std::string name = reorder::techniqueName(technique);
    if (state.range(0) == 1)
        serialSeconds()[name] = mean_seconds;
    const double base = serialSeconds().count(name) != 0
                            ? serialSeconds()[name]
                            : mean_seconds;
    state.counters["speedup"] =
        mean_seconds > 0.0 ? base / mean_seconds : 1.0;
}

void
BM_Random(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Random);
}
BENCHMARK(BM_Random)->Apply(threadArgs);

void
BM_DegSort(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::DegSort);
}
BENCHMARK(BM_DegSort)->Apply(threadArgs);

void
BM_Dbg(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Dbg);
}
BENCHMARK(BM_Dbg)->Apply(threadArgs);

void
BM_HubCluster(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::HubCluster);
}
BENCHMARK(BM_HubCluster)->Apply(threadArgs);

void
BM_Rcm(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Rcm);
}
BENCHMARK(BM_Rcm)->Apply(threadArgs);

void
BM_SlashBurn(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::SlashBurn);
}
BENCHMARK(BM_SlashBurn)->Apply(threadArgs);

void
BM_Gorder(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Gorder);
}
BENCHMARK(BM_Gorder)->Apply(threadArgs);

void
BM_Rabbit(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Rabbit);
}
BENCHMARK(BM_Rabbit)->Apply(threadArgs);

void
BM_RabbitPlusPlus(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::RabbitPlusPlus);
}
BENCHMARK(BM_RabbitPlusPlus)->Apply(threadArgs);

void
BM_Boba(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Boba);
}
BENCHMARK(BM_Boba)->Apply(threadArgs);

} // namespace

BENCHMARK_MAIN();
