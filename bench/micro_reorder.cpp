/**
 * @file
 * google-benchmark micro-benchmarks for the reordering techniques
 * (pre-processing throughput on this host; complements Fig. 9).
 */

#include <benchmark/benchmark.h>

#include "matrix/generators.hpp"
#include "reorder/reorder.hpp"

namespace
{

using namespace slo;

const Csr &
benchMatrix()
{
    // Shuffled community graph: representative input for reordering.
    static const Csr matrix =
        gen::hierarchicalCommunity(1 << 14, 8, 3, 10.0, 0.25, 21)
            .permutedSymmetric(Permutation::random(1 << 14, 3));
    return matrix;
}

void
runTechnique(benchmark::State &state, reorder::Technique technique)
{
    const Csr &m = benchMatrix();
    reorder::ReorderOptions options;
    options.gorderHubCap = 256;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            reorder::computeOrdering(technique, m, options).newIds());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        m.numNonZeros());
}

void
BM_Random(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Random);
}
BENCHMARK(BM_Random);

void
BM_DegSort(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::DegSort);
}
BENCHMARK(BM_DegSort);

void
BM_Dbg(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Dbg);
}
BENCHMARK(BM_Dbg);

void
BM_HubCluster(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::HubCluster);
}
BENCHMARK(BM_HubCluster);

void
BM_Rcm(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Rcm);
}
BENCHMARK(BM_Rcm);

void
BM_SlashBurn(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::SlashBurn);
}
BENCHMARK(BM_SlashBurn);

void
BM_Gorder(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Gorder);
}
BENCHMARK(BM_Gorder);

void
BM_Rabbit(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::Rabbit);
}
BENCHMARK(BM_Rabbit);

void
BM_RabbitPlusPlus(benchmark::State &state)
{
    runTechnique(state, reorder::Technique::RabbitPlusPlus);
}
BENCHMARK(BM_RabbitPlusPlus);

} // namespace

BENCHMARK_MAIN();
