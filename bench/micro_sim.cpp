/**
 * @file
 * google-benchmark micro-benchmarks for the streamed cache-simulation
 * hot path (host-side throughput data, not paper data):
 *
 *   - access-stream generation alone (no-op sink) — the generator's
 *     ceiling, and the baseline for attributing simulation cost
 *   - serial batched LRU simulation (CacheSim::accessBatch)
 *   - set-sharded LRU simulation at 1, 2, 4 and SLO_THREADS-default
 *     worker counts (ShardedCacheSim on an explicit pool)
 *   - streamed two-pass Belady vs. the materialized-trace wrapper
 *
 * Items processed = simulated cache accesses, so google-benchmark's
 * items_per_second is accesses/second directly. Peak RSS (VmHWM) is
 * attached to every benchmark as a counter, making trace-allocation
 * regressions visible in BENCH_micro_sim.json. run_benches.sh picks
 * this binary up with the other micro_* benches.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/belady.hpp"
#include "cache/sharded.hpp"
#include "core/dataset.hpp"
#include "gpu/sim_stream.hpp"
#include "kernels/access_stream.hpp"
#include "matrix/generators.hpp"
#include "matrix/permutation.hpp"
#include "par/par.hpp"
#include "prof/prof.hpp"

namespace
{

using namespace slo;

/** A scale-free matrix under a random permutation: worst-case X
 * locality, so the simulator sees realistic miss/scan pressure. */
const Csr &
benchMatrix()
{
    static const Csr matrix =
        gen::rmatSocial(15, 10.0, 42).permutedSymmetric(
            Permutation::random(1 << 15, 7));
    return matrix;
}

cache::CacheConfig
benchCache()
{
    return core::specForScale(core::Scale::Small).l2;
}

/** Replay the SpMV-CSR stream into @p sink; returns nothing. */
template <typename Sink>
void
replaySpmv(const Csr &matrix, const kernels::AddressLayout &layout,
           std::uint32_t line_bytes, Sink &&sink)
{
    kernels::forEachAccess(kernels::KernelKind::SpmvCsr, matrix, layout,
                           kernels::StreamOptions{}, line_bytes, sink);
}

std::uint64_t
countAccesses(const Csr &matrix, const kernels::AddressLayout &layout,
              std::uint32_t line_bytes)
{
    std::uint64_t count = 0;
    replaySpmv(matrix, layout, line_bytes,
               [&count](std::uint64_t) { ++count; });
    return count;
}

struct Setup
{
    const Csr &matrix;
    cache::CacheConfig config;
    kernels::AddressLayout layout;
    std::uint64_t accesses;
};

Setup
makeSetup()
{
    const Csr &matrix = benchMatrix();
    const cache::CacheConfig config = benchCache();
    const kernels::AddressLayout layout = kernels::makeLayout(
        kernels::KernelKind::SpmvCsr, matrix.numRows(),
        matrix.numNonZeros(), 1, config.lineBytes);
    const std::uint64_t accesses =
        countAccesses(matrix, layout, config.lineBytes);
    return Setup{matrix, config, layout, accesses};
}

void
finishState(benchmark::State &state, std::uint64_t accesses)
{
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(accesses));
    state.counters["peak_rss_bytes"] = benchmark::Counter(
        static_cast<double>(prof::peakRssKb()) * 1024.0,
        benchmark::Counter::kDefaults);
}

/** Generation ceiling: the stream with a sink that keeps nothing. */
void
BM_StreamGenOnly(benchmark::State &state)
{
    const Setup s = makeSetup();
    for (auto _ : state) {
        std::uint64_t sum = 0;
        replaySpmv(s.matrix, s.layout, s.config.lineBytes,
                   [&sum](std::uint64_t addr) { sum += addr; });
        benchmark::DoNotOptimize(sum);
    }
    finishState(state, s.accesses);
}
BENCHMARK(BM_StreamGenOnly);

/** Serial hot path: batched generation into one CacheSim. */
void
BM_SimSerialBatched(benchmark::State &state)
{
    const Setup s = makeSetup();
    for (auto _ : state) {
        cache::CacheSim sim(s.config);
        sim.setIrregularRegion(s.layout.xBase, s.layout.xEnd);
        gpu::BatchSink sink(
            gpu::kSimBatchAccesses,
            [&sim](const std::uint64_t *addrs, std::size_t n) {
                sim.accessBatch(addrs, n);
            });
        replaySpmv(s.matrix, s.layout, s.config.lineBytes, sink);
        sink.drain();
        sim.finish();
        benchmark::DoNotOptimize(sim.stats().fillBytes);
    }
    finishState(state, s.accesses);
}
BENCHMARK(BM_SimSerialBatched);

/** Sharded hot path at 1/2/4/default workers. */
void
BM_SimSharded(benchmark::State &state)
{
    const Setup s = makeSetup();
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        cache::ShardedCacheSim sim(s.config, /*num_shards=*/0, &pool);
        sim.setIrregularRegion(s.layout.xBase, s.layout.xEnd);
        gpu::BatchSink sink(
            gpu::kSimBatchAccesses,
            [&sim](const std::uint64_t *addrs, std::size_t n) {
                sim.accessBatch(addrs, n);
            });
        replaySpmv(s.matrix, s.layout, s.config.lineBytes, sink);
        sink.drain();
        sim.finish();
        benchmark::DoNotOptimize(sim.stats().fillBytes);
    }
    finishState(state, s.accesses);
}
BENCHMARK(BM_SimSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(
    par::defaultThreads());

/** Streamed two-pass OPT: 4 bytes/access, two generation passes. */
void
BM_BeladyStreamed(benchmark::State &state)
{
    const Setup s = makeSetup();
    cache::CacheConfig config = s.config;
    config.sectorBytes = 0; // OPT models whole-line fills
    for (auto _ : state) {
        const cache::CacheStats stats = cache::simulateBeladyStreamed(
            config, s.layout.xBase, s.layout.xEnd, s.accesses,
            [&](auto &&sink) {
                replaySpmv(s.matrix, s.layout, s.config.lineBytes,
                           sink);
            });
        benchmark::DoNotOptimize(stats.fillBytes);
    }
    finishState(state, s.accesses);
}
BENCHMARK(BM_BeladyStreamed);

/** Trace-based OPT wrapper: the memory-hungry shape, for contrast. */
void
BM_BeladyTrace(benchmark::State &state)
{
    const Setup s = makeSetup();
    cache::CacheConfig config = s.config;
    config.sectorBytes = 0;
    for (auto _ : state) {
        std::vector<std::uint64_t> trace;
        trace.reserve(static_cast<std::size_t>(s.accesses));
        replaySpmv(s.matrix, s.layout, s.config.lineBytes,
                   [&trace](std::uint64_t addr) {
                       trace.push_back(addr);
                   });
        const cache::CacheStats stats = cache::simulateBelady(
            trace, config, s.layout.xBase, s.layout.xEnd);
        benchmark::DoNotOptimize(stats.fillBytes);
    }
    finishState(state, s.accesses);
}
BENCHMARK(BM_BeladyTrace);

} // namespace

BENCHMARK_MAIN();
