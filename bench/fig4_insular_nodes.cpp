/**
 * @file
 * Figure 4: percentage of insular nodes per matrix (sorted by
 * insularity). The paper's point: even low-insularity matrices have a
 * large insular fraction, which is what RABBIT++'s first modification
 * exploits.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "community/metrics.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Figure 4: percentage of insular nodes");

    struct Row
    {
        std::string name;
        double insularity;
        double insularFraction;
    };
    std::vector<Row> rows;
    for (const auto &m : env.corpus) {
        const bench::RabbitInfo info = bench::rabbitInfoFor(env, m);
        rows.push_back({m.entry.name, info.artifacts.insularity,
                        community::insularNodeFraction(
                            m.original, info.artifacts.clustering)});
        std::cerr << "[fig4] " << m.entry.name << " done\n";
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.insularity < b.insularity;
              });

    core::Table table({"matrix", "insularity", "insular nodes"});
    for (const Row &row : rows) {
        table.addRow({row.name, core::fmt(row.insularity, 3),
                      core::fmtPct(row.insularFraction)});
    }
    core::printHeading(std::cout,
                       "Insular-node share (increasing insularity)");
    bench::emitTable(table, "fig4_insular_nodes");

    std::vector<double> all, low, high;
    for (const Row &row : rows) {
        all.push_back(row.insularFraction);
        (row.insularity >= 0.95 ? high : low)
            .push_back(row.insularFraction);
    }
    std::cout << "\nmean insular-node share: all "
              << core::fmtPct(core::mean(all))
              << ", insularity<0.95 " << core::fmtPct(core::mean(low))
              << ", insularity>=0.95 "
              << core::fmtPct(core::mean(high)) << "\n";
    std::cout << "(paper: high-insularity matrices are almost "
                 "entirely insular; low-insularity matrices still "
                 "have a substantial insular share)\n";
    return 0;
}
