/**
 * @file
 * Figure 7: reduction in SpMV DRAM traffic with RABBIT++ over RABBIT.
 * The paper plots matrices with insularity < 0.95 (for >= 0.95 the two
 * are within 1%) and reports: max traffic reduction 1.56x, mean 4.1%
 * over all inputs, 7.7% over the low-insularity ones; the run-time
 * equivalents are 1.57x max / 5.3% / 9.7%.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

int
main()
{
    const bench::Env env = bench::loadEnv(
        "Figure 7: RABBIT++ DRAM traffic reduction over RABBIT");

    struct Row
    {
        std::string name;
        double insularity;
        double trafficRatio; // RABBIT / RABBIT++ (>1 = improvement)
        double speedup;      // runtime RABBIT / RABBIT++
    };
    std::vector<Row> rows;

    for (const auto &m : env.corpus) {
        const bench::RabbitInfo info = bench::rabbitInfoFor(env, m);
        const gpu::SimReport rabbit = core::simulateOrdered(
            m.original, info.artifacts.perm, env.spec);
        const core::TimedOrdering rpp = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::RabbitPlusPlus);
        const gpu::SimReport plus = core::simulateOrdered(
            m.original, rpp.perm, env.spec);
        rows.push_back(
            {m.entry.name, info.artifacts.insularity,
             static_cast<double>(rabbit.trafficBytes) /
                 static_cast<double>(plus.trafficBytes),
             rabbit.modeledSeconds / plus.modeledSeconds});
        std::cerr << "[fig7] " << m.entry.name << " done\n";
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.insularity < b.insularity;
              });

    core::Table table({"matrix", "insularity", "traffic reduction",
                       "speedup"});
    for (const Row &row : rows) {
        if (row.insularity >= 0.95)
            continue; // the paper's figure shows only ins < 0.95
        table.addRow({row.name, core::fmt(row.insularity, 3),
                      core::fmtX(row.trafficRatio),
                      core::fmtX(row.speedup)});
    }
    core::printHeading(std::cout,
                       "RABBIT++ vs RABBIT (insularity < 0.95)");
    bench::emitTable(table, "fig7_rabbitpp");

    std::vector<double> all_t, low_t, all_s, low_s, high_t;
    for (const Row &row : rows) {
        all_t.push_back(row.trafficRatio);
        all_s.push_back(row.speedup);
        if (row.insularity < 0.95) {
            low_t.push_back(row.trafficRatio);
            low_s.push_back(row.speedup);
        } else {
            high_t.push_back(row.trafficRatio);
        }
    }
    core::Table summary({"metric", "ours", "paper"});
    summary.addRow({"max traffic reduction",
                    core::fmtX(core::maxOf(all_t)), "1.56x"});
    summary.addRow({"mean traffic reduction (all)",
                    core::fmtPct(core::mean(all_t) - 1.0), "4.1%"});
    summary.addRow({"mean traffic reduction (ins<0.95)",
                    core::fmtPct(core::mean(low_t) - 1.0), "7.7%"});
    summary.addRow({"max speedup", core::fmtX(core::maxOf(all_s)),
                    "1.57x"});
    summary.addRow({"mean speedup (all)",
                    core::fmtPct(core::mean(all_s) - 1.0), "5.3%"});
    summary.addRow({"mean speedup (ins<0.95)",
                    core::fmtPct(core::mean(low_s) - 1.0), "9.7%"});
    summary.addRow({"traffic delta (ins>=0.95)",
                    core::fmtPct(std::abs(core::mean(high_t) - 1.0)),
                    "<1%"});
    core::printHeading(std::cout, "Summary vs paper");
    bench::emitTable(summary, "fig7_summary");
    return 0;
}
