/**
 * @file
 * Table IV: run time (normalized to ideal) across other cuSPARSE-style
 * kernels — SpMV on COO, and SpMM with 4-column and 256-column dense
 * matrices — for RANDOM / ORIGINAL / RABBIT / RABBIT++, split by
 * insularity class.
 *
 * Paper reference values:
 *            SpMV-COO            SpMM-CSR-4          SpMM-CSR-256
 *            ALL  <.95  >=.95    ALL   <.95  >=.95   ALL    <.95  >=.95
 * RANDOM     5.37 4.94  5.97     29.33 32.17 26.07   139.3  196.6 75.13
 * ORIGINAL   1.84 2.1   1.55     5.97  8.92  3.58    26.81  43.79 10.99
 * RABBIT     1.49 1.73  1.23     4.31  7.39  2.18    20.32  50.3  3.91
 * RABBIT++   1.4  1.55  1.23     3.79  5.85  2.18    18.7   43.97 3.95
 */

#include <array>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/grid.hpp"
#include "par/par.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Table IV: other cuSPARSE kernels");

    struct KernelCase
    {
        std::string name;
        gpu::SimOptions options;
    };
    std::vector<KernelCase> kernels(3);
    kernels[0].name = "SpMV-COO";
    kernels[0].options.kernel = kernels::KernelKind::SpmvCoo;
    kernels[1].name = "SpMM-CSR-4";
    kernels[1].options.kernel = kernels::KernelKind::SpmmCsr;
    kernels[1].options.denseCols = 4;
    kernels[2].name = "SpMM-CSR-256";
    kernels[2].options.kernel = kernels::KernelKind::SpmmCsr;
    kernels[2].options.denseCols = 256;

    const std::vector<reorder::Technique> techniques = {
        reorder::Technique::Random, reorder::Technique::Original,
        reorder::Technique::Rabbit,
        reorder::Technique::RabbitPlusPlus};

    // Per-matrix insularity classes, computed concurrently (vector<bool>
    // packs bits, so gather through a byte vector to avoid write races).
    std::vector<char> insularity_class(env.corpus.size(), 0);
    par::parallelFor(
        std::size_t{0}, env.corpus.size(),
        [&](std::size_t mi) {
            insularity_class[mi] =
                bench::rabbitInfoFor(env, env.corpus[mi]).highInsularity
                    ? 1
                    : 0;
        },
        par::ForOptions{1});
    std::vector<bool> high_insularity(env.corpus.size());
    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi)
        high_insularity[mi] = insularity_class[mi] != 0;

    // Each grid cell reorders once and runs all three kernels on it.
    const auto grid = core::runGrid(
        env.corpus, techniques,
        [&env, &kernels](const core::GridCell &cell) {
            const core::TimedOrdering ordering =
                core::orderingFor(cell.matrix->entry,
                                  cell.matrix->original, env.scale,
                                  cell.technique);
            const Csr reordered =
                cell.matrix->original.permutedSymmetric(ordering.perm);
            std::array<double, 3> runtimes{};
            for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
                runtimes[ki] =
                    gpu::simulateKernel(reordered, env.spec,
                                        kernels[ki].options)
                        .normalizedRuntime;
            }
            return runtimes;
        });

    // results[kernel][technique] = per-matrix normalized run time.
    std::map<std::string,
             std::map<reorder::Technique, std::vector<double>>>
        results;
    for (std::size_t mi = 0; mi < env.corpus.size(); ++mi) {
        for (std::size_t ti = 0; ti < techniques.size(); ++ti) {
            for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
                results[kernels[ki].name][techniques[ti]].push_back(
                    grid[mi][ti][ki]);
            }
        }
        std::cerr << "[table4] " << env.corpus[mi].entry.name
                  << " done\n";
    }

    core::Table table({"technique", "SpMV-COO: ALL", "<0.95", ">=0.95",
                       "SpMM-4: ALL", "<0.95", ">=0.95",
                       "SpMM-256: ALL", "<0.95", ">=0.95"});
    for (auto t : techniques) {
        std::vector<std::string> row = {reorder::techniqueName(t)};
        for (const KernelCase &k : kernels) {
            const auto &values = results[k.name][t];
            row.push_back(core::fmtX(core::mean(values)));
            row.push_back(core::fmtX(
                bench::maskedMean(values, high_insularity, false)));
            row.push_back(core::fmtX(
                bench::maskedMean(values, high_insularity, true)));
        }
        table.addRow(std::move(row));
    }
    core::printHeading(std::cout,
                       "Run time normalized to ideal (ours)");
    bench::emitTable(table, "table4_other_kernels");

    core::Table paper({"technique", "SpMV-COO: ALL", "<0.95", ">=0.95",
                       "SpMM-4: ALL", "<0.95", ">=0.95",
                       "SpMM-256: ALL", "<0.95", ">=0.95"});
    paper.addRow({"RANDOM", "5.37x", "4.94x", "5.97x", "29.33x",
                  "32.17x", "26.07x", "139.3x", "196.6x", "75.13x"});
    paper.addRow({"ORIGINAL", "1.84x", "2.1x", "1.55x", "5.97x",
                  "8.92x", "3.58x", "26.81x", "43.79x", "10.99x"});
    paper.addRow({"RABBIT", "1.49x", "1.73x", "1.23x", "4.31x",
                  "7.39x", "2.18x", "20.32x", "50.3x", "3.91x"});
    paper.addRow({"RABBIT++", "1.4x", "1.55x", "1.23x", "3.79x",
                  "5.85x", "2.18x", "18.7x", "43.97x", "3.95x"});
    core::printHeading(std::cout, "Paper values (Table IV)");
    paper.print(std::cout);

    std::cout << "\n(shape to reproduce: RABBIT++ <= RABBIT <= "
                 "ORIGINAL << RANDOM within every kernel; the "
                 "normalized penalty grows with the SpMM width)\n";
    return 0;
}
