/**
 * @file
 * Ablations over the modelling/design choices DESIGN.md calls out:
 *
 *   A. row-interleaving window of the GPU access stream (1 = the
 *      sequential replay the paper's simulator used),
 *   B. cache line size (32B sector vs 128B full line),
 *   C. community detector behind the community-based ordering
 *      (RABBIT's incremental aggregation vs Louvain),
 *   D. RABBIT++ hub-degree threshold factor,
 *   E. L2 fill granularity (32B lines vs 128B lines vs the real
 *      A6000's sectored 128B/32B geometry).
 *
 * Run on a fixed 12-matrix slice of the corpus for speed.
 */

#include <iostream>

#include "bench_common.hpp"
#include "community/dendrogram.hpp"
#include "community/louvain.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

namespace
{

/** Louvain-based community ordering: communities laid out
 * contiguously (by first-appearance), members in original order. */
Permutation
louvainOrder(const Csr &matrix)
{
    const community::LouvainResult result = community::louvain(matrix);
    const auto members = result.clustering.members();
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(matrix.numRows()));
    for (const auto &community_members : members)
        order.insert(order.end(), community_members.begin(),
                     community_members.end());
    return Permutation::fromNewToOld(order);
}

} // namespace

int
main()
{
    bench::Env env = bench::loadEnv("Ablations: modelling and design "
                                    "choices");
    bench::selectSlice(&env, 12);

    // --- A: interleaving window ---------------------------------------
    {
        core::Table table({"window", "mean RABBIT traffic",
                           "mean RANDOM traffic"});
        for (int window : {1, 32, 256}) {
            std::vector<double> rabbit, random;
            gpu::SimOptions options;
            options.rowWindow = window;
            for (const auto &m : env.corpus) {
                const auto rb = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Rabbit);
                const auto rnd = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Random);
                rabbit.push_back(
                    core::simulateOrdered(m.original, rb.perm,
                                          env.spec, options)
                        .normalizedTraffic);
                random.push_back(
                    core::simulateOrdered(m.original, rnd.perm,
                                          env.spec, options)
                        .normalizedTraffic);
            }
            table.addRow({std::to_string(window),
                          core::fmtX(core::mean(rabbit)),
                          core::fmtX(core::mean(random))});
            std::cerr << "[ablation] window " << window << " done\n";
        }
        core::printHeading(std::cout,
                           "A: GPU row-interleaving window");
        bench::emitTable(table, "ablation_window");
    }

    // --- B: line size ---------------------------------------------------
    {
        core::Table table({"line bytes", "mean RABBIT traffic",
                           "mean RANDOM traffic"});
        for (std::uint32_t line : {32u, 128u}) {
            gpu::GpuSpec spec = env.spec;
            spec.l2.lineBytes = line;
            std::vector<double> rabbit, random;
            for (const auto &m : env.corpus) {
                const auto rb = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Rabbit);
                const auto rnd = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Random);
                rabbit.push_back(
                    core::simulateOrdered(m.original, rb.perm, spec)
                        .normalizedTraffic);
                random.push_back(
                    core::simulateOrdered(m.original, rnd.perm, spec)
                        .normalizedTraffic);
            }
            table.addRow({std::to_string(line),
                          core::fmtX(core::mean(rabbit)),
                          core::fmtX(core::mean(random))});
            std::cerr << "[ablation] line " << line << " done\n";
        }
        core::printHeading(std::cout, "B: cache line size");
        bench::emitTable(table, "ablation_linesize");
    }

    // --- C: community detector ------------------------------------------
    {
        core::Table table({"matrix", "RABBIT aggregation", "Louvain"});
        std::vector<double> agg, louvain_traffic;
        for (const auto &m : env.corpus) {
            const auto rb =
                core::orderingFor(m.entry, m.original, env.scale,
                                  reorder::Technique::Rabbit);
            const double t_agg =
                core::simulateOrdered(m.original, rb.perm, env.spec)
                    .normalizedTraffic;
            const double t_louvain =
                core::simulateOrdered(m.original,
                                      louvainOrder(m.original),
                                      env.spec)
                    .normalizedTraffic;
            agg.push_back(t_agg);
            louvain_traffic.push_back(t_louvain);
            table.addRow({m.entry.name, core::fmtX(t_agg),
                          core::fmtX(t_louvain)});
            std::cerr << "[ablation] louvain " << m.entry.name
                      << " done\n";
        }
        table.addRow({"MEAN", core::fmtX(core::mean(agg)),
                      core::fmtX(core::mean(louvain_traffic))});
        core::printHeading(
            std::cout,
            "C: community detector behind the ordering (traffic)");
        bench::emitTable(table, "ablation_detector");
    }

    // --- E: sectored L2 (real A6000 geometry: 128B lines, 32B
    // sectors) vs the default 32B-line model -------------------------
    {
        core::Table table({"L2 model", "mean RABBIT traffic",
                           "mean RANDOM traffic"});
        struct Mode
        {
            std::string name;
            std::uint32_t line;
            std::uint32_t sector;
        };
        for (const Mode &mode :
             {Mode{"32B lines (default)", 32, 0},
              Mode{"128B lines", 128, 0},
              Mode{"128B lines / 32B sectors", 128, 32}}) {
            gpu::GpuSpec spec = env.spec;
            spec.l2.lineBytes = mode.line;
            spec.l2.sectorBytes = mode.sector;
            std::vector<double> rabbit, random;
            for (const auto &m : env.corpus) {
                const auto rb = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Rabbit);
                const auto rnd = core::orderingFor(
                    m.entry, m.original, env.scale,
                    reorder::Technique::Random);
                rabbit.push_back(
                    core::simulateOrdered(m.original, rb.perm, spec)
                        .normalizedTraffic);
                random.push_back(
                    core::simulateOrdered(m.original, rnd.perm, spec)
                        .normalizedTraffic);
            }
            table.addRow({mode.name,
                          core::fmtX(core::mean(rabbit)),
                          core::fmtX(core::mean(random))});
            std::cerr << "[ablation] L2 model " << mode.name
                      << " done\n";
        }
        core::printHeading(std::cout,
                           "E: L2 fill granularity (sectored vs "
                           "line)");
        bench::emitTable(table, "ablation_sectored");
    }

    // --- D: hub threshold factor -----------------------------------------
    {
        core::Table table({"hub factor", "mean RABBIT++ traffic"});
        for (double factor : {0.5, 1.0, 2.0, 4.0}) {
            std::vector<double> traffic;
            for (const auto &m : env.corpus) {
                const bench::RabbitInfo info =
                    bench::rabbitInfoFor(env, m);
                reorder::RabbitResult rabbit;
                rabbit.perm = info.artifacts.perm;
                rabbit.clustering = info.artifacts.clustering;
                const auto rpp = reorder::rabbitPlusFromRabbit(
                    m.original, rabbit,
                    {true, reorder::HubTreatment::HubGroup, factor});
                traffic.push_back(
                    core::simulateOrdered(m.original, rpp.perm,
                                          env.spec)
                        .normalizedTraffic);
            }
            table.addRow({core::fmt(factor, 1),
                          core::fmtX(core::mean(traffic))});
            std::cerr << "[ablation] hub factor " << factor
                      << " done\n";
        }
        core::printHeading(std::cout,
                           "D: RABBIT++ hub threshold factor "
                           "(paper uses 1.0)");
        bench::emitTable(table, "ablation_hubfactor");
    }
    return 0;
}
