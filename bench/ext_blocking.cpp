/**
 * @file
 * Extension bench (paper Sec. VII, "blocking optimizations"): SpMV
 * DRAM traffic for propagation blocking vs matrix reordering.
 *
 * Blocking converts all irregular accesses into streamed bin records
 * (~16B/nnz overhead) so its traffic is essentially independent of the
 * ordering; reordering needs no application changes and, where
 * community structure exists, beats blocking's fixed overhead. The
 * bench quantifies the crossover on a corpus slice.
 */

#include <iostream>

#include "bench_common.hpp"
#include "gpu/simulate_blocked.hpp"
#include "kernels/propagation_blocking.hpp"

using namespace slo;

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: propagation blocking vs reordering (Sec. VII)");
    bench::selectSlice(&env, 10);

    const auto bin_rows = static_cast<Index>(
        env.spec.l2.capacityBytes / (2 * kElemBytes));

    core::Table table({"matrix", "RANDOM", "RANDOM+blocked",
                       "RABBIT++", "RABBIT+++blocked"});
    std::vector<double> c_rnd, c_rnd_b, c_rpp, c_rpp_b;
    for (const auto &m : env.corpus) {
        const auto rnd = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Random);
        const auto rpp = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::RabbitPlusPlus);
        const Csr random_matrix =
            m.original.permutedSymmetric(rnd.perm);
        const Csr rpp_matrix = m.original.permutedSymmetric(rpp.perm);

        const double a =
            gpu::simulateKernel(random_matrix, env.spec)
                .normalizedTraffic;
        const double b =
            gpu::simulateBlockedSpmv(
                kernels::PropagationBlockedSpmv(random_matrix,
                                                bin_rows),
                env.spec)
                .normalizedTraffic;
        const double c =
            gpu::simulateKernel(rpp_matrix, env.spec)
                .normalizedTraffic;
        const double d =
            gpu::simulateBlockedSpmv(
                kernels::PropagationBlockedSpmv(rpp_matrix, bin_rows),
                env.spec)
                .normalizedTraffic;
        table.addRow({m.entry.name, core::fmtX(a), core::fmtX(b),
                      core::fmtX(c), core::fmtX(d)});
        c_rnd.push_back(a);
        c_rnd_b.push_back(b);
        c_rpp.push_back(c);
        c_rpp_b.push_back(d);
        std::cerr << "[ext_blocking] " << m.entry.name << " done\n";
    }
    table.addRow({"MEAN", core::fmtX(core::mean(c_rnd)),
                  core::fmtX(core::mean(c_rnd_b)),
                  core::fmtX(core::mean(c_rpp)),
                  core::fmtX(core::mean(c_rpp_b))});
    core::printHeading(std::cout,
                       "SpMV DRAM traffic normalized to unblocked "
                       "compulsory");
    bench::emitTable(table, "ext_blocking");
    std::cout << "\n(bin width: " << bin_rows
              << " rows = half the L2; blocking is "
                 "ordering-insensitive, reordering is free of "
                 "application changes)\n";
    return 0;
}
