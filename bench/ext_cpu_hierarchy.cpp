/**
 * @file
 * Extension bench: RABBIT's original multi-level claim — hierarchical
 * communities mapping onto a hierarchical (CPU-style) cache stack
 * (paper Sec. V-A; Arai et al.'s design goal).
 *
 * Replays the SpMV-CSR access stream through a scaled three-level
 * hierarchy (L1 ~ innermost communities, L2, shared L3 — capacities
 * scaled with the corpus like the GPU L2) and reports per-level hit
 * rates and DRAM traffic per ordering. Expected shape: RABBIT/RABBIT++
 * raise the *inner*-level hit rates most, because the dendrogram DFS
 * keeps nested sub-communities contiguous.
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "cache/hierarchy.hpp"
#include "kernels/access_stream.hpp"

using namespace slo;

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: multi-level (CPU-style) cache hierarchy");
    bench::selectSlice(&env, 16);

    // Scaled CPU-ish stack: L1 4 KiB / L2 16 KiB / L3 = the corpus'
    // scaled LLC capacity (64 KiB at small).
    const std::vector<cache::CacheConfig> stack = {
        {4ULL * 1024, 64, 8},
        {16ULL * 1024, 64, 8},
        {env.spec.l2.capacityBytes, 64, 16},
    };

    const std::vector<reorder::Technique> techniques = {
        reorder::Technique::Random, reorder::Technique::Original,
        reorder::Technique::Rabbit,
        reorder::Technique::RabbitPlusPlus};

    core::Table table({"technique", "L1 hit", "L2 hit", "L3 hit",
                       "DRAM bytes/nnz"});
    for (auto t : techniques) {
        double l1 = 0.0, l2 = 0.0, l3 = 0.0, dram = 0.0;
        for (const auto &m : env.corpus) {
            const auto ordering = core::orderingFor(
                m.entry, m.original, env.scale, t);
            const Csr reordered =
                m.original.permutedSymmetric(ordering.perm);
            cache::CacheHierarchy hierarchy(stack);
            const auto layout = kernels::makeLayout(
                kernels::KernelKind::SpmvCsr, reordered.numRows(),
                reordered.numNonZeros(), 1, 64);
            kernels::spmvCsrStream(
                reordered, layout, {},
                [&hierarchy](std::uint64_t addr) {
                    hierarchy.access(addr);
                });
            hierarchy.finish();
            l1 += hierarchy.levelStats(0).hitRate();
            l2 += hierarchy.levelStats(1).hitRate();
            l3 += hierarchy.levelStats(2).hitRate();
            dram += static_cast<double>(
                        hierarchy.dramTrafficBytes()) /
                    static_cast<double>(reordered.numNonZeros());
        }
        const auto n = static_cast<double>(env.corpus.size());
        table.addRow({reorder::techniqueName(t),
                      core::fmtPct(l1 / n), core::fmtPct(l2 / n),
                      core::fmtPct(l3 / n), core::fmt(dram / n, 2)});
        std::cerr << "[ext_cpu_hierarchy] "
                  << reorder::techniqueName(t) << " done\n";
    }
    core::printHeading(std::cout,
                       "Mean per-level hit rate and DRAM traffic "
                       "(SpMV stream through L1/L2/L3)");
    bench::emitTable(table, "ext_cpu_hierarchy");
    std::cout << "\n(L2/L3 hit rates are local: hits among the "
                 "accesses that reached that level)\n";
    return 0;
}
