/**
 * @file
 * google-benchmark micro-benchmarks for the slo::par runtime:
 * parallelFor / parallelReduce / parallelStableSort throughput at 1, 2,
 * 4 and SLO_THREADS-default worker counts (host-side scaling data, not
 * paper data). run_benches.sh captures the JSON so a trajectory can
 * track the speedup curve per host.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "matrix/generators.hpp"
#include "matrix/permutation.hpp"
#include "par/par.hpp"

namespace
{

using namespace slo;

const Csr &
benchMatrix()
{
    static const Csr matrix =
        gen::rmatSocial(15, 10.0, 42).permutedSymmetric(
            Permutation::random(1 << 15, 7));
    return matrix;
}

/** Thread counts worth plotting: 1 (serial), 2, 4, host default. */
void
threadArgs(benchmark::internal::Benchmark *bench)
{
    bench->Arg(1)->Arg(2)->Arg(4)->Arg(par::defaultThreads());
}

void
BM_ParallelForRowScan(benchmark::State &state)
{
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    const Csr &m = benchMatrix();
    std::vector<std::int64_t> out(
        static_cast<std::size_t>(m.numRows()));
    for (auto _ : state) {
        par::parallelFor(
            std::size_t{0}, out.size(),
            [&](std::size_t v) {
                std::int64_t sum = 0;
                for (Index c : m.rowIndices(static_cast<Index>(v)))
                    sum += c;
                out[v] = sum;
            },
            par::ForOptions{0, &pool});
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        m.numNonZeros());
}
BENCHMARK(BM_ParallelForRowScan)->Apply(threadArgs);

void
BM_ParallelReduceDegreeSum(benchmark::State &state)
{
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    const Csr &m = benchMatrix();
    for (auto _ : state) {
        const std::int64_t total = par::parallelReduce(
            std::size_t{0}, static_cast<std::size_t>(m.numRows()),
            /*grain=*/0, std::int64_t{0},
            [&m](std::size_t lo, std::size_t hi) {
                std::int64_t sum = 0;
                for (std::size_t v = lo; v < hi; ++v)
                    sum += m.degree(static_cast<Index>(v));
                return sum;
            },
            [](std::int64_t a, std::int64_t b) { return a + b; },
            &pool);
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * m.numRows());
}
BENCHMARK(BM_ParallelReduceDegreeSum)->Apply(threadArgs);

void
BM_ParallelStableSortByDegree(benchmark::State &state)
{
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    const Csr &m = benchMatrix();
    std::vector<Index> base(static_cast<std::size_t>(m.numRows()));
    std::iota(base.begin(), base.end(), Index{0});
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<Index> order = base;
        state.ResumeTiming();
        par::parallelStableSort(
            order.begin(), order.end(),
            [&m](Index a, Index b) {
                return m.degree(a) < m.degree(b);
            },
            &pool);
        benchmark::DoNotOptimize(order.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * m.numRows());
}
BENCHMARK(BM_ParallelStableSortByDegree)->Apply(threadArgs);

void
BM_TaskGroupSubmitDrain(benchmark::State &state)
{
    par::ThreadPool pool(static_cast<int>(state.range(0)));
    constexpr int kTasks = 1024;
    for (auto _ : state) {
        std::int64_t counter = 0;
        par::parallelFor(
            std::size_t{0}, std::size_t{kTasks},
            [&counter](std::size_t) {
                // Near-empty body: scheduling overhead dominates,
                // which is exactly what this measures.
                benchmark::DoNotOptimize(counter);
            },
            par::ForOptions{1, &pool});
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kTasks);
}
BENCHMARK(BM_TaskGroupSubmitDrain)->Apply(threadArgs);

} // namespace

BENCHMARK_MAIN();
