/**
 * @file
 * Table II: the design space of RABBIT modifications — SpMV run time
 * (normalized to ideal) for {RABBIT, RABBIT+HUBSORT, RABBIT+HUBGROUP}
 * x {without, with} insular-node grouping, split into ALL /
 * insularity<0.95 / insularity>=0.95.
 *
 * Paper reference values:
 *                         without insular grouping | with
 *   RABBIT            1.54x 1.81x 1.25x | 1.49x 1.70x 1.25x
 *   RABBIT+HUBSORT    1.63x 1.89x 1.35x | 1.57x 1.86x 1.26x
 *   RABBIT+HUBGROUP   1.48x 1.65x 1.29x | 1.46x 1.65x 1.25x
 */

#include <iostream>

#include "bench_common.hpp"
#include "reorder/rabbitpp.hpp"

using namespace slo;

int
main()
{
    const bench::Env env =
        bench::loadEnv("Table II: RABBIT modification design space");

    const std::vector<std::pair<std::string, reorder::HubTreatment>>
        hub_rows = {
            {"RABBIT", reorder::HubTreatment::None},
            {"RABBIT+HUBSORT", reorder::HubTreatment::HubSort},
            {"RABBIT+HUBGROUP", reorder::HubTreatment::HubGroup},
        };

    // runtimes[hub][insular] = per-matrix normalized run times.
    std::vector<std::vector<std::vector<double>>> runtimes(
        hub_rows.size(),
        std::vector<std::vector<double>>(2));
    std::vector<bool> high_insularity;

    for (const auto &m : env.corpus) {
        const bench::RabbitInfo info = bench::rabbitInfoFor(env, m);
        high_insularity.push_back(info.highInsularity);
        reorder::RabbitResult rabbit;
        rabbit.perm = info.artifacts.perm;
        rabbit.clustering = info.artifacts.clustering;
        for (std::size_t h = 0; h < hub_rows.size(); ++h) {
            for (int grouped = 0; grouped < 2; ++grouped) {
                const reorder::RabbitPlusResult variant =
                    reorder::rabbitPlusFromRabbit(
                        m.original, rabbit,
                        {grouped == 1, hub_rows[h].second, 1.0});
                const gpu::SimReport report = core::simulateOrdered(
                    m.original, variant.perm, env.spec);
                runtimes[h][static_cast<std::size_t>(grouped)]
                    .push_back(report.normalizedRuntime);
            }
        }
        std::cerr << "[table2] " << m.entry.name << " done\n";
    }

    auto split_means = [&](const std::vector<double> &values) {
        std::vector<bool> mask = high_insularity;
        return std::array<double, 3>{
            core::mean(values),
            bench::maskedMean(values, mask, false),
            bench::maskedMean(values, mask, true)};
    };

    core::Table table({"", "w/o insular: ALL", "INS<0.95", "INS>=0.95",
                       "with insular: ALL", "INS<0.95", "INS>=0.95"});
    for (std::size_t h = 0; h < hub_rows.size(); ++h) {
        std::vector<std::string> row = {hub_rows[h].first};
        for (int grouped = 0; grouped < 2; ++grouped) {
            const auto means = split_means(
                runtimes[h][static_cast<std::size_t>(grouped)]);
            for (double v : means)
                row.push_back(core::fmtX(v));
        }
        table.addRow(std::move(row));
    }
    core::printHeading(std::cout,
                       "SpMV run time normalized to ideal (ours)");
    bench::emitTable(table, "table2_design_space");

    core::Table paper({"", "w/o insular: ALL", "INS<0.95", "INS>=0.95",
                       "with insular: ALL", "INS<0.95", "INS>=0.95"});
    paper.addRow({"RABBIT", "1.54x", "1.81x", "1.25x", "1.49x",
                  "1.70x", "1.25x"});
    paper.addRow({"RABBIT+HUBSORT", "1.63x", "1.89x", "1.35x", "1.57x",
                  "1.86x", "1.26x"});
    paper.addRow({"RABBIT+HUBGROUP", "1.48x", "1.65x", "1.29x",
                  "1.46x", "1.65x", "1.25x"});
    core::printHeading(std::cout, "Paper values (Table II)");
    paper.print(std::cout);

    std::cout << "\nRABBIT++ = insular grouping + HUBGROUP (bottom "
                 "right region; should be the best column group)\n";
    return 0;
}
