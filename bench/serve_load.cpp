/**
 * @file
 * Load generator for the reordering service (`slo_served`).
 *
 * Each leg spawns a fresh daemon (own socket + cache dir, SLO_TRACE
 * off so daemon manifests never pollute the perf snapshot) and drives
 * a specific traffic shape:
 *
 *   hot           one warmed key, sequential round trips — serving
 *                 overhead and tail latency without build cost
 *   cold          distinct cold keys, sequential — build-dominated
 *                 latency through the full scheduler/store path
 *   coalesce      4 connections pipeline the same cold key; asserts
 *                 the daemon built it exactly once (builds_total == 1)
 *   saturation    16 one-shot connections against SLO_SERVE_QUEUE=2;
 *                 asserts backpressure produced explicit rejections
 *                 and every request was answered (bounded latency, no
 *                 unbounded queueing)
 *   determinism   replays a fixed pipelined trace against daemons at
 *                 SLO_THREADS=1 and 8; asserts byte-identical output
 *
 * Usage: serve_load [--legs hot,cold,...] [--tag name]
 *
 * `--tag` suffixes the manifest/table name (serve_load_<tag>) so CI
 * can run hot-heavy and cold-heavy invocations into one output dir.
 * Client-observed latencies land in `serve.<leg>_seconds` histograms
 * (manifest `latency` section, gated by scripts/perf_trajectory.py);
 * per-leg wall time is recorded as phase `serve.<leg>`.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>
#include <stdlib.h>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "prof/counters.hpp"
#include "prof/histogram.hpp"
#include "serve/client.hpp"

namespace
{

using namespace slo;

struct LegResult
{
    std::string name;
    std::size_t requests = 0;
    std::size_t ok = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    std::uint64_t dropped = 0; ///< daemon-side dropped responses
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    bool pass = false;
    std::string note;
};

struct Harness
{
    std::string workDir;
    std::string daemonBin;
    std::vector<std::string> matrices;
};

double
quantileMs(std::vector<double> seconds, double q)
{
    if (seconds.empty())
        return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const std::size_t index = std::min(
        seconds.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(
                                         seconds.size())));
    return seconds[index] * 1000.0;
}

void
recordLatencies(const std::string &leg,
                const std::vector<double> &seconds, LegResult *result)
{
    prof::LatencyHistogram &histogram =
        prof::latencyHistogram("serve." + leg + "_seconds");
    for (const double s : seconds)
        histogram.record(s);
    result->p50Ms = quantileMs(seconds, 0.50);
    result->p99Ms = quantileMs(seconds, 0.99);
}

serve::DaemonProcess
startDaemon(const Harness &harness, const std::string &leg,
            std::vector<std::string> extra_env)
{
    const std::string socket =
        harness.workDir + "/" + leg + ".sock";
    extra_env.push_back("SLO_CACHE_DIR=" + harness.workDir +
                        "/cache_" + leg);
    extra_env.push_back("SLO_TRACE=0");
    serve::DaemonProcess daemon =
        serve::spawnDaemon(harness.daemonBin, socket, extra_env);
    if (daemon.running() && !serve::waitForServer(socket, 30000)) {
        serve::stopDaemon(daemon, 2000);
        daemon.pid = -1;
    }
    return daemon;
}

serve::Request
reorderRequest(std::uint64_t id, const std::string &matrix,
               std::uint64_t seed)
{
    serve::Request request;
    request.id = id;
    request.op = "reorder";
    request.matrix = matrix;
    request.technique = "RABBIT";
    request.seed = seed;
    // Generous explicit deadline: the legs assert scheduler behaviour,
    // not build speed; only saturation wants rejections and gets them
    // from the queue bound, not from deadlines.
    request.deadlineMs = 300000;
    return request;
}

/** Count a response into @p result. @return true when parseable. */
bool
countResponse(const std::optional<serve::Response> &response,
              LegResult *result)
{
    if (!response) {
        ++result->errors;
        return false;
    }
    if (response->status == "ok")
        ++result->ok;
    else if (response->status == "rejected")
        ++result->rejected;
    else
        ++result->errors;
    return true;
}

/** Pull daemon stats and fold dropped/builds into the result. */
void
finishLeg(serve::DaemonProcess &daemon, LegResult *result,
          std::uint64_t *builds)
{
    serve::Client client;
    if (client.connect(daemon.socketPath)) {
        if (const std::optional<obs::Json> stats = client.stats()) {
            const obs::Json &counters = stats->at("counters");
            result->dropped =
                counters.at("dropped_responses").asUint();
            if (builds != nullptr)
                *builds = stats->at("store").at("builds").asUint();
        }
    }
    serve::stopDaemon(daemon, 10000);
}

LegResult
runHot(const Harness &harness)
{
    LegResult result;
    result.name = "hot";
    serve::DaemonProcess daemon = startDaemon(harness, "hot", {});
    if (!daemon.running()) {
        result.note = "daemon failed to start";
        return result;
    }
    serve::Client client;
    if (!client.connect(daemon.socketPath)) {
        result.note = "connect failed";
        serve::stopDaemon(daemon, 2000);
        return result;
    }
    // Warm the key (one cold build), then measure pure serving cost.
    const serve::Request warm =
        reorderRequest(1, harness.matrices[0], 1);
    countResponse(client.call(warm), &result);
    ++result.requests;

    constexpr std::size_t kRounds = 200;
    std::vector<double> latencies;
    latencies.reserve(kRounds);
    for (std::size_t i = 0; i < kRounds; ++i) {
        const std::uint64_t start = obs::monotonicNanos();
        const std::optional<serve::Response> response = client.call(
            reorderRequest(2 + i, harness.matrices[0], 1));
        latencies.push_back(
            static_cast<double>(obs::monotonicNanos() - start) *
            1e-9);
        countResponse(response, &result);
        ++result.requests;
    }
    recordLatencies("hot", latencies, &result);
    client.close();
    finishLeg(daemon, &result, nullptr);
    result.pass = result.ok == result.requests &&
                  result.errors == 0 && result.dropped == 0;
    result.note = result.pass ? "all ok" : "FAILED";
    return result;
}

LegResult
runCold(const Harness &harness)
{
    LegResult result;
    result.name = "cold";
    serve::DaemonProcess daemon = startDaemon(harness, "cold", {});
    if (!daemon.running()) {
        result.note = "daemon failed to start";
        return result;
    }
    serve::Client client;
    if (!client.connect(daemon.socketPath)) {
        result.note = "connect failed";
        serve::stopDaemon(daemon, 2000);
        return result;
    }
    std::vector<double> latencies;
    std::uint64_t id = 1;
    for (const std::string &matrix : harness.matrices) {
        for (const std::uint64_t seed : {1ull, 2ull}) {
            const std::uint64_t start = obs::monotonicNanos();
            const std::optional<serve::Response> response =
                client.call(reorderRequest(id++, matrix, seed));
            latencies.push_back(
                static_cast<double>(obs::monotonicNanos() - start) *
                1e-9);
            countResponse(response, &result);
            ++result.requests;
        }
    }
    recordLatencies("cold", latencies, &result);
    client.close();
    std::uint64_t builds = 0;
    finishLeg(daemon, &result, &builds);
    result.pass = result.ok == result.requests &&
                  result.errors == 0 && result.dropped == 0 &&
                  builds == result.requests;
    std::ostringstream note;
    note << "builds=" << builds << "/" << result.requests;
    result.note = note.str();
    return result;
}

LegResult
runCoalesce(const Harness &harness)
{
    LegResult result;
    result.name = "coalesce";
    serve::DaemonProcess daemon =
        startDaemon(harness, "coalesce", {});
    if (!daemon.running()) {
        result.note = "daemon failed to start";
        return result;
    }
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPerClient = 8;
    std::vector<std::unique_ptr<serve::Client>> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        auto client = std::make_unique<serve::Client>();
        if (!client->connect(daemon.socketPath)) {
            result.note = "connect failed";
            serve::stopDaemon(daemon, 2000);
            return result;
        }
        clients.push_back(std::move(client));
    }
    // Pipeline the same cold key from every connection before reading
    // anything back: the duplicate requests race into the scheduler.
    const std::uint64_t start = obs::monotonicNanos();
    for (std::size_t c = 0; c < kClients; ++c)
        for (std::size_t i = 0; i < kPerClient; ++i)
            clients[c]->sendFrame(
                reorderRequest(c * kPerClient + i + 1,
                               harness.matrices[1], 77)
                    .toJson()
                    .dump());
    std::string digest;
    bool digests_agree = true;
    std::vector<double> latencies;
    for (std::size_t c = 0; c < kClients; ++c) {
        for (std::size_t i = 0; i < kPerClient; ++i) {
            const std::optional<std::string> frame =
                clients[c]->recvFrame();
            ++result.requests;
            latencies.push_back(
                static_cast<double>(obs::monotonicNanos() - start) *
                1e-9);
            if (!frame) {
                ++result.errors;
                continue;
            }
            const std::optional<serve::Response> response =
                serve::Response::parse(*frame, nullptr);
            if (countResponse(response, &result) &&
                response->status == "ok") {
                if (digest.empty())
                    digest = response->digest;
                else if (digest != response->digest)
                    digests_agree = false;
            }
        }
    }
    recordLatencies("coalesce", latencies, &result);
    clients.clear();
    std::uint64_t builds = 0;
    finishLeg(daemon, &result, &builds);
    result.pass = result.ok == result.requests &&
                  result.errors == 0 && result.dropped == 0 &&
                  builds == 1 && digests_agree;
    std::ostringstream note;
    note << "builds=" << builds << " (want 1)";
    result.note = note.str();
    return result;
}

LegResult
runSaturation(const Harness &harness)
{
    LegResult result;
    result.name = "saturation";
    // A tiny queue plus multi-threaded builds forces backpressure:
    // with 16 distinct cold keys only 2 may be in flight, the rest
    // must be rejected in bounded time, not queued.
    serve::DaemonProcess daemon = startDaemon(
        harness, "saturation",
        {"SLO_SERVE_QUEUE=2", "SLO_THREADS=4"});
    if (!daemon.running()) {
        result.note = "daemon failed to start";
        return result;
    }
    constexpr std::size_t kConns = 16;
    std::vector<std::unique_ptr<serve::Client>> clients;
    std::vector<std::uint64_t> sent_at(kConns, 0);
    for (std::size_t i = 0; i < kConns; ++i) {
        auto client = std::make_unique<serve::Client>();
        if (!client->connect(daemon.socketPath)) {
            result.note = "connect failed";
            serve::stopDaemon(daemon, 2000);
            return result;
        }
        const std::string &matrix =
            harness.matrices[i % harness.matrices.size()];
        client->sendFrame(
            reorderRequest(i + 1, matrix, 2000 + i).toJson().dump());
        sent_at[i] = obs::monotonicNanos();
        clients.push_back(std::move(client));
    }
    // Poll all connections so each latency reflects when the daemon
    // answered, not the order this loop happened to read them in.
    std::vector<double> latencies(kConns, 0.0);
    std::vector<bool> done(kConns, false);
    std::vector<double> rejected_latencies;
    std::size_t remaining = kConns;
    const std::uint64_t deadline =
        obs::monotonicNanos() + 120ull * 1000 * 1000 * 1000;
    while (remaining > 0 && obs::monotonicNanos() < deadline) {
        std::vector<pollfd> fds;
        std::vector<std::size_t> slots;
        for (std::size_t i = 0; i < kConns; ++i) {
            if (done[i])
                continue;
            fds.push_back(pollfd{clients[i]->rawFd(), POLLIN, 0});
            slots.push_back(i);
        }
        const int ready = ::poll(
            fds.data(), static_cast<nfds_t>(fds.size()), 1000);
        if (ready <= 0)
            continue;
        for (std::size_t f = 0; f < fds.size(); ++f) {
            if ((fds[f].revents & (POLLIN | POLLHUP)) == 0)
                continue;
            const std::size_t i = slots[f];
            const std::optional<std::string> frame =
                clients[i]->recvFrame();
            done[i] = true;
            --remaining;
            ++result.requests;
            latencies[i] =
                static_cast<double>(obs::monotonicNanos() -
                                    sent_at[i]) *
                1e-9;
            if (!frame) {
                ++result.errors;
                continue;
            }
            const std::optional<serve::Response> response =
                serve::Response::parse(*frame, nullptr);
            if (countResponse(response, &result) &&
                response->status == "rejected")
                rejected_latencies.push_back(latencies[i]);
        }
    }
    std::vector<double> answered;
    for (std::size_t i = 0; i < kConns; ++i)
        if (done[i])
            answered.push_back(latencies[i]);
    recordLatencies("saturation", answered, &result);
    clients.clear();
    finishLeg(daemon, &result, nullptr);
    result.pass = result.requests == kConns &&
                  result.errors == 0 && result.dropped == 0 &&
                  result.rejected > 0 && result.ok > 0;
    std::ostringstream note;
    note << "rejected=" << result.rejected
         << " reject_p99_ms=" << std::fixed << std::setprecision(2)
         << quantileMs(rejected_latencies, 0.99);
    result.note = note.str();
    return result;
}

/** One fixed pipelined trace; @return concatenated response bytes. */
std::string
replayTrace(const Harness &harness, const std::string &leg,
            const std::string &threads, LegResult *result)
{
    serve::DaemonProcess daemon =
        startDaemon(harness, leg, {"SLO_THREADS=" + threads});
    if (!daemon.running()) {
        result->note = "daemon failed to start";
        return "";
    }
    serve::Client client;
    if (!client.connect(daemon.socketPath)) {
        result->note = "connect failed";
        serve::stopDaemon(daemon, 2000);
        return "";
    }
    std::vector<std::string> frames;
    std::uint64_t id = 1;
    for (std::size_t m = 0; m < 3 && m < harness.matrices.size();
         ++m) {
        for (const std::uint64_t seed : {1ull, 2ull}) {
            frames.push_back(
                reorderRequest(id++, harness.matrices[m], seed)
                    .toJson()
                    .dump());
            serve::Request ping;
            ping.id = id++;
            ping.op = "ping";
            frames.push_back(ping.toJson().dump());
        }
    }
    for (const std::string &frame : frames)
        client.sendFrame(frame);
    std::string transcript;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const std::optional<std::string> frame = client.recvFrame();
        ++result->requests;
        if (!frame) {
            ++result->errors;
            continue;
        }
        countResponse(serve::Response::parse(*frame, nullptr),
                      result);
        transcript += *frame;
        transcript += '\n';
    }
    client.close();
    LegResult stats_probe;
    finishLeg(daemon, &stats_probe, nullptr);
    result->dropped += stats_probe.dropped;
    return transcript;
}

LegResult
runDeterminism(const Harness &harness)
{
    LegResult result;
    result.name = "determinism";
    const std::uint64_t start = obs::monotonicNanos();
    const std::string serial =
        replayTrace(harness, "determinism_t1", "1", &result);
    const std::string threaded =
        replayTrace(harness, "determinism_t8", "8", &result);
    recordLatencies(
        "determinism",
        {static_cast<double>(obs::monotonicNanos() - start) * 1e-9},
        &result);
    const bool identical =
        !serial.empty() && serial == threaded;
    result.pass = identical && result.errors == 0 &&
                  result.ok + result.rejected == result.requests &&
                  result.dropped == 0;
    result.note =
        identical ? "byte-identical t1 vs t8" : "TRACE MISMATCH";
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> legs = {"hot", "cold", "coalesce",
                                     "saturation", "determinism"};
    std::string tag;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--legs" && i + 1 < argc) {
            legs.clear();
            std::istringstream stream(argv[++i]);
            std::string leg;
            while (std::getline(stream, leg, ','))
                if (!leg.empty())
                    legs.push_back(leg);
        } else if (arg == "--tag" && i + 1 < argc) {
            tag = argv[++i];
        } else {
            std::cerr << "usage: serve_load [--legs a,b,...]"
                         " [--tag name]\n";
            return 2;
        }
    }

    const std::string bench_name =
        tag.empty() ? "serve_load" : "serve_load_" + tag;
    obs::RunManifest::instance().begin(bench_name);
    obs::installExitEmission();
    prof::initProcess();
    // Touching the global pool registers its manifest pre-emission
    // hook, so the manifest carries the pool section obs_validate
    // requires even though this process only does client IO.
    obs::RunManifest::instance().set(
        "threads", static_cast<std::uint64_t>(
                       par::ThreadPool::global().numThreads()));

    Harness harness;
    harness.daemonBin = serve::resolveDaemonBinary();
    if (harness.daemonBin.empty()) {
        std::cerr << "serve_load: slo_served not found "
                     "(set SLO_SERVE_BIN)\n";
        return 1;
    }
    // The 6 cheapest corpus entries (by declared nnz): the legs probe
    // scheduler behaviour, not build cost, and the selection must stay
    // deterministic across runs for the determinism leg's fixed trace.
    const core::Scale scale = core::scaleFromEnv();
    obs::RunManifest::instance().set("scale",
                                     core::scaleName(scale));
    std::vector<core::DatasetEntry> corpus = core::paperCorpus(scale);
    std::stable_sort(corpus.begin(), corpus.end(),
                     [scale](const core::DatasetEntry &a,
                             const core::DatasetEntry &b) {
                         return a.nnzEstimateAt(scale) <
                                b.nnzEstimateAt(scale);
                     });
    for (const core::DatasetEntry &entry : corpus) {
        harness.matrices.push_back(entry.name);
        if (harness.matrices.size() == 6)
            break;
    }
    obs::RunManifest::instance().set(
        "num_matrices",
        static_cast<std::uint64_t>(harness.matrices.size()));

    char work_template[] = "/tmp/slo_serve_load_XXXXXX";
    const char *work = ::mkdtemp(work_template);
    if (work == nullptr) {
        std::cerr << "serve_load: mkdtemp failed\n";
        return 1;
    }
    harness.workDir = work;

    std::cout << "# " << bench_name << "\n";
    std::cout << "# daemon: " << harness.daemonBin << "\n";
    std::cout << "# scale: " << core::scaleName(scale) << "\n";

    core::Table table({"leg", "requests", "ok", "rejected", "errors",
                       "dropped", "p50_ms", "p99_ms", "pass",
                       "note"});
    bool all_pass = true;
    for (const std::string &leg : legs) {
        const std::uint64_t start = obs::monotonicNanos();
        const prof::ScopedCounters counters("serve", "serve." + leg);
        SLO_SPAN("serve_load." + leg);
        LegResult result;
        if (leg == "hot")
            result = runHot(harness);
        else if (leg == "cold")
            result = runCold(harness);
        else if (leg == "coalesce")
            result = runCoalesce(harness);
        else if (leg == "saturation")
            result = runSaturation(harness);
        else if (leg == "determinism")
            result = runDeterminism(harness);
        else {
            std::cerr << "serve_load: unknown leg " << leg << "\n";
            all_pass = false;
            continue;
        }
        const double seconds =
            static_cast<double>(obs::monotonicNanos() - start) *
            1e-9;
        obs::RunManifest::instance().recordPhase(
            "serve", "serve." + leg, seconds);
        all_pass = all_pass && result.pass;

        std::ostringstream p50, p99;
        p50 << std::fixed << std::setprecision(3) << result.p50Ms;
        p99 << std::fixed << std::setprecision(3) << result.p99Ms;
        table.addRow({result.name, std::to_string(result.requests),
                      std::to_string(result.ok),
                      std::to_string(result.rejected),
                      std::to_string(result.errors),
                      std::to_string(result.dropped), p50.str(),
                      p99.str(), result.pass ? "yes" : "NO",
                      result.note});
    }
    table.print(std::cout);

    std::error_code ec;
    std::filesystem::remove_all(harness.workDir, ec);

    if (!all_pass) {
        std::cerr << "serve_load: one or more legs failed\n";
        return 1;
    }
    return 0;
}
