/**
 * @file
 * Extension bench (Sec. VII related work — Barik et al., Esfahani et
 * al.): how well do *static* locality estimators predict the
 * *simulated* DRAM traffic?
 *
 * For every (matrix, technique) pair in a corpus slice, computes the
 * four estimators in reorder/locality_metrics.hpp alongside the
 * simulated normalized traffic, then reports the Pearson/Spearman
 * correlation of each estimator with traffic. A good estimator lets a
 * user screen orderings without running a simulator at all.
 */

#include <iostream>

#include "bench_common.hpp"
#include "reorder/locality_metrics.hpp"

using namespace slo;

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: static locality metrics vs simulated traffic");
    bench::selectSlice(&env, 12);

    const std::vector<reorder::Technique> techniques = {
        reorder::Technique::Random, reorder::Technique::Original,
        reorder::Technique::Dbg, reorder::Technique::Boba,
        reorder::Technique::Rabbit, reorder::Technique::RabbitPlusPlus};

    std::vector<double> traffic, window_score, gap, same_line,
        distinct_lines;
    for (const auto &m : env.corpus) {
        for (auto t : techniques) {
            const auto ordering = core::orderingFor(
                m.entry, m.original, env.scale, t);
            const Csr reordered =
                m.original.permutedSymmetric(ordering.perm);
            traffic.push_back(
                gpu::simulateKernel(reordered, env.spec)
                    .normalizedTraffic);
            window_score.push_back(
                reorder::windowLocalityScore(reordered));
            gap.push_back(reorder::averageGapLines(reordered));
            same_line.push_back(
                reorder::sameLineFraction(reordered));
            distinct_lines.push_back(
                reorder::distinctLinesPerNonZero(reordered));
        }
        std::cerr << "[ext_locality] " << m.entry.name << " done\n";
    }

    core::Table table({"estimator", "Pearson vs traffic",
                       "Spearman vs traffic", "expected sign"});
    auto row = [&](const std::string &name,
                   const std::vector<double> &estimate,
                   const std::string &sign) {
        table.addRow({name,
                      core::fmt(core::pearson(estimate, traffic), 3),
                      core::fmt(core::spearman(estimate, traffic), 3),
                      sign});
    };
    row("window locality score (GORDER objective)", window_score,
        "negative");
    row("average gap (lines)", gap, "positive");
    row("same-line fraction", same_line, "negative");
    row("distinct lines per nnz", distinct_lines, "positive");
    core::printHeading(std::cout,
                       "Estimator correlation with simulated DRAM "
                       "traffic (" +
                           std::to_string(traffic.size()) +
                           " matrix x technique points)");
    bench::emitTable(table, "ext_locality_metrics");
    std::cout << "\n(strong correlations mean the estimator can "
                 "screen orderings without a simulator — the Barik/"
                 "Esfahani related-work premise)\n";
    return 0;
}
