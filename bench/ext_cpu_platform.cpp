/**
 * @file
 * Extension bench (paper Sec. VI-D / VIII: "we also expect RABBIT++ to
 * be equally effective ... on other platforms such as multi-core
 * CPUs"): measures *real wall-clock* SpMV time on this host CPU before
 * and after reordering — no simulator involved, the host's actual
 * cache hierarchy does the talking.
 */

#include <iostream>

#include "bench_common.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"

using namespace slo;

namespace
{

/** Median-of-5 wall-clock seconds for one SpMV over @p m. */
double
timeSpmv(const Csr &m)
{
    std::vector<Value> x(static_cast<std::size_t>(m.numCols()), 1.0f);
    std::vector<Value> y(static_cast<std::size_t>(m.numRows()));
    std::vector<double> samples;
    for (int run = 0; run < 5; ++run) {
        const obs::Span span("ext_cpu.spmv");
        kernels::spmvCsr(m, x, y);
        samples.push_back(span.elapsedSeconds());
    }
    return core::percentile(samples, 50);
}

} // namespace

int
main()
{
    bench::Env env = bench::loadEnv(
        "Extension: real host-CPU SpMV wall-clock (Sec. VI-D)");
    bench::selectSlice(&env, 12);

    core::Table table({"matrix", "RANDOM (ms)", "RABBIT (ms)",
                       "RABBIT++ (ms)", "speedup R++/RANDOM"});
    std::vector<double> speedups;
    for (const auto &m : env.corpus) {
        const auto random = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Random);
        const auto rabbit = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::Rabbit);
        const auto rpp = core::orderingFor(
            m.entry, m.original, env.scale,
            reorder::Technique::RabbitPlusPlus);
        const double t_random =
            timeSpmv(m.original.permutedSymmetric(random.perm));
        const double t_rabbit =
            timeSpmv(m.original.permutedSymmetric(rabbit.perm));
        const double t_rpp =
            timeSpmv(m.original.permutedSymmetric(rpp.perm));
        table.addRow({m.entry.name, core::fmt(t_random * 1e3, 2),
                      core::fmt(t_rabbit * 1e3, 2),
                      core::fmt(t_rpp * 1e3, 2),
                      core::fmtX(t_random / t_rpp)});
        speedups.push_back(t_random / t_rpp);
        std::cerr << "[ext_cpu] " << m.entry.name << " done\n";
    }
    core::printHeading(std::cout,
                       "Host-CPU SpMV wall clock by ordering");
    bench::emitTable(table, "ext_cpu_platform");
    std::cout << "\nmean RABBIT++-over-RANDOM speedup on this CPU: "
              << core::fmtX(core::mean(speedups))
              << " (real hardware, not the simulator)\n";
    return 0;
}
